//! Integration tests for the heap record manager: logged, locked record
//! operations with rollback through the real transaction manager.

use ariesim_common::stats::new_stats;
use ariesim_common::tmp::TempDir;
use ariesim_common::{Error, PageId, TableId};
use ariesim_lock::LockManager;
use ariesim_record::HeapManager;
use ariesim_storage::{BufferPool, DiskManager, PoolOptions, SpaceMap, SpaceRm};
use ariesim_txn::{RmRegistry, TransactionManager};
use ariesim_wal::{LogManager, LogOptions};
use std::sync::Arc;

struct Fix {
    _dir: TempDir,
    tm: Arc<TransactionManager>,
    heap: Arc<HeapManager>,
    table: TableId,
    first_page: PageId,
}

fn fix() -> Fix {
    let dir = TempDir::new("heap-it");
    let stats = new_stats();
    let log = Arc::new(
        LogManager::open(&dir.file("wal"), LogOptions::default(), stats.clone()).unwrap(),
    );
    let disk = DiskManager::open(&dir.file("db"), stats.clone()).unwrap();
    let pool = BufferPool::new(disk, log.clone(), PoolOptions::default(), stats.clone());
    SpaceMap::initialize(&pool).unwrap();
    let locks = Arc::new(LockManager::new(stats.clone()));
    let rms = Arc::new(RmRegistry::new());
    let heap = HeapManager::new(pool.clone(), locks.clone(), log.clone(), stats.clone());
    rms.register(heap.clone());
    rms.register(Arc::new(SpaceRm::new(pool.clone())));
    let tm = Arc::new(TransactionManager::new(
        log,
        locks,
        pool,
        rms,
        stats,
    ));
    let heap_for_hook = heap.clone();
    tm.on_end(Arc::new(move |txn| heap_for_hook.on_txn_end(txn)));
    let table = TableId(1);
    let txn = tm.begin();
    let first_page = heap.create_file(&txn, table).unwrap();
    tm.commit(&txn).unwrap();
    Fix {
        _dir: dir,
        tm,
        heap,
        table,
        first_page,
    }
}

#[test]
fn insert_fetch_roundtrip() {
    let f = fix();
    let txn = f.tm.begin();
    let rid = f.heap.insert(&txn, f.table, f.first_page, b"hello").unwrap();
    assert_eq!(f.heap.fetch(&txn, rid, true).unwrap(), b"hello");
    f.tm.commit(&txn).unwrap();
    let txn2 = f.tm.begin();
    assert_eq!(f.heap.fetch(&txn2, rid, false).unwrap(), b"hello");
    f.tm.commit(&txn2).unwrap();
}

#[test]
fn delete_then_fetch_is_bad_rid() {
    let f = fix();
    let txn = f.tm.begin();
    let rid = f.heap.insert(&txn, f.table, f.first_page, b"x").unwrap();
    f.tm.commit(&txn).unwrap();
    let txn = f.tm.begin();
    let before = f.heap.delete(&txn, f.table, rid).unwrap();
    assert_eq!(before, b"x");
    assert!(matches!(
        f.heap.fetch(&txn, rid, true),
        Err(Error::BadRid { .. })
    ));
    f.tm.commit(&txn).unwrap();
}

#[test]
fn rollback_undoes_insert() {
    let f = fix();
    let txn = f.tm.begin();
    let rid = f.heap.insert(&txn, f.table, f.first_page, b"ghost").unwrap();
    f.tm.rollback(&txn).unwrap();
    let txn2 = f.tm.begin();
    assert!(matches!(
        f.heap.fetch(&txn2, rid, false),
        Err(Error::BadRid { .. })
    ));
    assert!(f.heap.scan_all(f.first_page).unwrap().is_empty());
    f.tm.commit(&txn2).unwrap();
}

#[test]
fn rollback_undoes_delete_at_same_rid() {
    let f = fix();
    let txn = f.tm.begin();
    let rid = f.heap.insert(&txn, f.table, f.first_page, b"keeper").unwrap();
    f.tm.commit(&txn).unwrap();
    let txn = f.tm.begin();
    f.heap.delete(&txn, f.table, rid).unwrap();
    f.tm.rollback(&txn).unwrap();
    let txn2 = f.tm.begin();
    assert_eq!(f.heap.fetch(&txn2, rid, false).unwrap(), b"keeper");
    f.tm.commit(&txn2).unwrap();
}

#[test]
fn rollback_undoes_update() {
    let f = fix();
    let txn = f.tm.begin();
    let rid = f.heap.insert(&txn, f.table, f.first_page, b"old-value").unwrap();
    f.tm.commit(&txn).unwrap();
    let txn = f.tm.begin();
    f.heap.update(&txn, f.table, rid, b"new").unwrap();
    assert_eq!(f.heap.fetch(&txn, rid, true).unwrap(), b"new");
    f.tm.rollback(&txn).unwrap();
    let txn2 = f.tm.begin();
    assert_eq!(f.heap.fetch(&txn2, rid, false).unwrap(), b"old-value");
    f.tm.commit(&txn2).unwrap();
}

#[test]
fn partial_rollback_to_savepoint() {
    let f = fix();
    let txn = f.tm.begin();
    let r1 = f.heap.insert(&txn, f.table, f.first_page, b"first").unwrap();
    let sp = txn.savepoint();
    let r2 = f.heap.insert(&txn, f.table, f.first_page, b"second").unwrap();
    f.tm.rollback_to(&txn, sp).unwrap();
    assert_eq!(f.heap.fetch(&txn, r1, true).unwrap(), b"first");
    assert!(f.heap.fetch(&txn, r2, true).is_err());
    f.tm.commit(&txn).unwrap();
}

#[test]
fn uncommitted_delete_blocks_reader_conditionally() {
    let f = fix();
    let txn = f.tm.begin();
    let rid = f.heap.insert(&txn, f.table, f.first_page, b"data").unwrap();
    f.tm.commit(&txn).unwrap();

    let deleter = f.tm.begin();
    f.heap.delete(&deleter, f.table, rid).unwrap();

    // A reader in another transaction must block on the deleter's X lock;
    // verify via a second thread that succeeds only after rollback.
    let heap = f.heap.clone();
    let tm = f.tm.clone();
    let h = std::thread::spawn(move || {
        let reader = tm.begin();
        let v = heap.fetch(&reader, rid, false).unwrap();
        tm.commit(&reader).unwrap();
        v
    });
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(!h.is_finished(), "reader should be blocked by deleter's lock");
    f.tm.rollback(&deleter).unwrap();
    assert_eq!(h.join().unwrap(), b"data");
}

#[test]
fn file_extension_survives_rollback() {
    let f = fix();
    // Fill the first page so an insert extends the file, then roll back.
    let blob = vec![7u8; 1000];
    let txn = f.tm.begin();
    for _ in 0..8 {
        f.heap.insert(&txn, f.table, f.first_page, &blob).unwrap();
    }
    f.tm.commit(&txn).unwrap();

    let txn = f.tm.begin();
    let rid = f.heap.insert(&txn, f.table, f.first_page, &blob).unwrap();
    assert_ne!(rid.page, f.first_page, "insert should spill to a new page");
    f.tm.rollback(&txn).unwrap();

    // The record is gone but the new page is still chained in (the NTA
    // committed independently), so the next insert lands on it directly.
    let txn2 = f.tm.begin();
    let rid2 = f.heap.insert(&txn2, f.table, f.first_page, &blob).unwrap();
    assert_eq!(rid2.page, rid.page);
    f.tm.commit(&txn2).unwrap();
}

#[test]
fn reservation_prevents_space_theft() {
    let f = fix();
    // Fill page 1 nearly full with two large records.
    let big = vec![1u8; 3900];
    let txn = f.tm.begin();
    let r1 = f.heap.insert(&txn, f.table, f.first_page, &big).unwrap();
    let r2 = f.heap.insert(&txn, f.table, f.first_page, &big).unwrap();
    assert_eq!(r1.page, f.first_page);
    assert_eq!(r2.page, f.first_page);
    f.tm.commit(&txn).unwrap();

    // T1 deletes r1 (reserving ~3900 bytes); T2 inserts a large record that
    // would only fit by consuming the reserved space.
    let t1 = f.tm.begin();
    f.heap.delete(&t1, f.table, r1).unwrap();
    let t2 = f.tm.begin();
    let r3 = f.heap.insert(&t2, f.table, f.first_page, &big).unwrap();
    assert_ne!(
        r3.page, f.first_page,
        "T2 must not consume space reserved by T1's uncommitted delete"
    );
    f.tm.commit(&t2).unwrap();
    // T1's undo can now re-insert at the exact original RID.
    f.tm.rollback(&t1).unwrap();
    let txn = f.tm.begin();
    assert_eq!(f.heap.fetch(&txn, r1, false).unwrap(), big);
    f.tm.commit(&txn).unwrap();
}

#[test]
fn reservation_released_after_commit() {
    let f = fix();
    let big = vec![1u8; 3900];
    let txn = f.tm.begin();
    let r1 = f.heap.insert(&txn, f.table, f.first_page, &big).unwrap();
    let _r2 = f.heap.insert(&txn, f.table, f.first_page, &big).unwrap();
    f.tm.commit(&txn).unwrap();
    let t1 = f.tm.begin();
    f.heap.delete(&t1, f.table, r1).unwrap();
    f.tm.commit(&t1).unwrap();
    // Space is free for real now.
    let t2 = f.tm.begin();
    let r3 = f.heap.insert(&t2, f.table, f.first_page, &big).unwrap();
    assert_eq!(r3.page, f.first_page);
    f.tm.commit(&t2).unwrap();
}

#[test]
fn scan_all_sees_only_live_records() {
    let f = fix();
    let txn = f.tm.begin();
    let r1 = f.heap.insert(&txn, f.table, f.first_page, b"a").unwrap();
    let _r2 = f.heap.insert(&txn, f.table, f.first_page, b"b").unwrap();
    let r3 = f.heap.insert(&txn, f.table, f.first_page, b"c").unwrap();
    f.heap.delete(&txn, f.table, r1).unwrap();
    f.tm.commit(&txn).unwrap();
    let recs = f.heap.scan_all(f.first_page).unwrap();
    assert_eq!(recs.len(), 2);
    assert_eq!(recs[0].1, b"b");
    assert_eq!(recs[1].0, r3);
}

#[test]
fn update_too_large_fails_cleanly() {
    let f = fix();
    let txn = f.tm.begin();
    let rid = f.heap.insert(&txn, f.table, f.first_page, b"small").unwrap();
    let huge = vec![0u8; 9000];
    assert!(matches!(
        f.heap.update(&txn, f.table, rid, &huge),
        Err(Error::TooLarge { .. })
    ));
    // Record unchanged.
    assert_eq!(f.heap.fetch(&txn, rid, true).unwrap(), b"small");
    f.tm.commit(&txn).unwrap();
}

#[test]
fn many_inserts_span_pages_and_scan_back() {
    let f = fix();
    let txn = f.tm.begin();
    let mut rids = Vec::new();
    for i in 0..500u32 {
        let data = format!("record-{i:05}-{}", "x".repeat(64)).into_bytes();
        rids.push(f.heap.insert(&txn, f.table, f.first_page, &data).unwrap());
    }
    f.tm.commit(&txn).unwrap();
    let recs = f.heap.scan_all(f.first_page).unwrap();
    assert_eq!(recs.len(), 500);
    let pages: std::collections::HashSet<_> = rids.iter().map(|r| r.page).collect();
    assert!(pages.len() > 1, "should have spilled to multiple pages");
}
