//! The checker's regression oracle: it must rediscover the two historical
//! pool races (re-injected behind the `model-bugs` feature) within the
//! default (`--quick`) budget, replay each discovery from its trace, and
//! still pass the fixed protocols exhaustively at the same bound.
//!
//! Bug arming is process-global, so every test here serializes on one lock
//! — including the fixed-harness test, which must not run while a sibling
//! test has a race armed.
#![cfg(feature = "model-bugs")]

use std::sync::{Mutex, MutexGuard, OnceLock};

use ariesim_model::harness;
use ariesim_model::ModelOptions;

fn serial() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn assert_bug_found(name: &str, expect_in_message: &str) {
    let h = harness::find(name).unwrap_or_else(|| panic!("{name} not registered"));
    let res = harness::run(&h, &ModelOptions::default());
    let f = res
        .failure
        .unwrap_or_else(|| panic!("{name}: race not found in {} schedules", res.schedules));
    assert!(
        f.message.contains(expect_in_message),
        "{name}: tripped the wrong oracle: {}",
        f.message
    );
    assert!(
        !f.trace.steps.is_empty(),
        "{name}: failure came with an empty schedule"
    );
    // The discovery must be replayable: identical failure from the trace.
    let rep = harness::run_replay(&h, &f.trace);
    assert!(
        rep.diverged.is_none(),
        "{name}: replay diverged: {:?}",
        rep.diverged
    );
    assert_eq!(
        rep.failure.as_deref(),
        Some(f.message.as_str()),
        "{name}: replay produced a different failure"
    );
}

#[test]
fn finds_double_install_race() {
    let _g = serial();
    assert_bug_found("pool_double_install_bug", "orphaned frame");
}

#[test]
fn finds_stale_pin_race() {
    let _g = serial();
    assert_bug_found("pool_stale_pin_bug", "stale pin");
}

/// With the bugs disarmed, the fixed protocols pass *exhaustively* at the
/// same preemption bound the discoveries used.
#[test]
fn fixed_protocols_pass_exhaustively_at_bound_2() {
    let _g = serial();
    for name in [
        "pool_claim_install",
        "pool_pin_vs_evict",
        "pool_failed_load_unwind",
        "wal_flush_mirror",
    ] {
        let h = harness::find(name).unwrap();
        let res = harness::run(&h, &ModelOptions::default());
        assert!(
            res.failure.is_none(),
            "{name} failed with the bugs disarmed: {:?}",
            res.failure.map(|f| f.message)
        );
        assert!(
            res.complete,
            "{name} did not exhaust preemption bound 2 within budget"
        );
    }
}
