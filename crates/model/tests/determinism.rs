//! Scheduler determinism: the checker's one hard meta-guarantee.
//!
//! Same seed + same harness must produce a byte-identical exploration —
//! including the failure trace — and replaying a trace must reproduce the
//! identical failure. Everything else the checker claims (found a race,
//! proved a bound exhaustively) rests on this, because a nondeterministic
//! checker's traces would be unreproducible anecdotes.

use proptest::prelude::*;

use ariesim_model::harness;
use ariesim_model::trace::Trace;
use ariesim_model::ModelOptions;

fn opts_with_seed(seed: u64) -> ModelOptions {
    ModelOptions {
        seed,
        ..ModelOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Byte-identical traces across repeated explorations, any seed, and a
    /// replay that reproduces the identical failure message.
    #[test]
    fn same_seed_byte_identical_trace(seed in 0u64..1_000_000) {
        let h = harness::find("toy_lost_update").unwrap();
        let opts = opts_with_seed(seed);
        let a = harness::run(&h, &opts);
        let b = harness::run(&h, &opts);
        let fa = a.failure.expect("the deliberate race must be found");
        let fb = b.failure.expect("the deliberate race must be found");
        prop_assert_eq!(fa.trace.to_jsonl(), fb.trace.to_jsonl());
        prop_assert_eq!(&fa.message, &fb.message);
        prop_assert_eq!((a.schedules, a.pruned, a.decisions), (b.schedules, b.pruned, b.decisions));

        let rep = harness::run_replay(&h, &fa.trace);
        prop_assert!(rep.diverged.is_none(), "replay diverged: {:?}", rep.diverged);
        prop_assert_eq!(rep.failure.as_deref(), Some(fa.message.as_str()));
    }
}

/// The passing harnesses explore identically run to run: counts, verdicts
/// and completeness are all functions of (harness, options) only.
#[test]
fn exploration_counts_deterministic() {
    for name in ["toy_mutex_counter", "pool_claim_install", "wal_flush_mirror"] {
        let h = harness::find(name).unwrap();
        let opts = ModelOptions::default();
        let a = harness::run(&h, &opts);
        let b = harness::run(&h, &opts);
        assert!(a.failure.is_none(), "{name} failed: {:?}", a.failure.map(|f| f.message));
        assert!(a.complete, "{name} did not exhaust its bound");
        assert_eq!(
            (a.schedules, a.pruned, a.decisions, a.complete),
            (b.schedules, b.pruned, b.decisions, b.complete),
            "{name} explored differently on the second run"
        );
    }
}

/// A trace survives serialization: parse(to_jsonl(t)) replays to the same
/// failure as the in-memory trace.
#[test]
fn serialized_trace_replays_identically() {
    let h = harness::find("toy_lost_update").unwrap();
    let res = harness::run(&h, &ModelOptions::default());
    let f = res.failure.expect("race must be found");
    let parsed = Trace::parse(&f.trace.to_jsonl()).expect("trace round-trips");
    assert_eq!(parsed, f.trace);
    let rep = harness::run_replay(&h, &parsed);
    assert!(rep.diverged.is_none(), "replay diverged: {:?}", rep.diverged);
    assert_eq!(rep.failure, Some(f.message));
}

/// Different seeds may explore in a different order but must reach the same
/// verdict on a Pass harness.
#[test]
fn verdict_independent_of_seed() {
    let h = harness::find("toy_mutex_counter").unwrap();
    for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
        let res = harness::run(&h, &opts_with_seed(seed));
        assert!(res.failure.is_none(), "seed {seed} found a phantom failure");
        assert!(res.complete, "seed {seed} did not exhaust the bound");
    }
}
