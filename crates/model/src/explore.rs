//! Systematic exploration: iterative preemption-bounded DFS with sleep sets.
//!
//! Schedules are explored by *re-execution*: the DFS keeps a stack of
//! decision nodes (the pending-op set it saw, the choice it made, and the
//! sleep set at entry); each iteration re-runs the harness, forcing the
//! recorded choices down the stack prefix and extending with the default
//! policy past it. Backtracking retires the current choice into the deepest
//! node's sleep set and advances to the next in-budget alternative, popping
//! exhausted nodes.
//!
//! Preemption bounding (CHESS-style): switching away from a still-enabled
//! previous thread costs one unit of budget; switching because the previous
//! thread blocked or finished is free. A round-robin fairness switch every
//! [`QUANTUM`] steps is also free — required, because the pool's claim path
//! and the WAL's drain/backpressure paths spin (`latch_busy` / help-drain
//! yield loops) and a pure prefer-current policy would never let the lock
//! holder run. The switch rotates over *enabled* threads, ignoring sleep
//! sets: a sleeper whose pending op never conflicts with the spinner's ops
//! would otherwise be starved into the step cap.
//!
//! Sleep sets (Godefroid): after exploring choice `c` at a node, `c` sleeps
//! in every sibling subtree until some executed op touches the same object,
//! pruning schedules that only commute independent steps. With both bound
//! and budget at their defaults this is a heuristic bug-finder biased
//! toward few-preemption interleavings — exactly the races humans write —
//! not a proof; `complete = true` is reported only when the DFS exhausts
//! every in-budget schedule.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::rng::XorShift;
use crate::runtime::{run_schedule, Env, PendingOp, Scheduler};
use crate::trace::{Step, Trace};

/// Free round-robin switch cadence (see module docs).
pub const QUANTUM: usize = 32;

#[derive(Clone, Debug)]
pub struct ModelOptions {
    /// Preemption budget per schedule (default 2 — most real races need 1).
    pub preemptions: usize,
    /// Stop after this many executions (completed + pruned) without a
    /// verdict; `complete` stays false.
    pub max_schedules: u64,
    /// Per-schedule decision cap: a livelock backstop, reported as failure.
    pub max_steps: usize,
    /// Seeds the default policy's tie-breaks. Same seed + same harness ⇒
    /// byte-identical exploration and trace.
    pub seed: u64,
    /// Sleep-set pruning (on by default; off explores redundant permutations).
    pub sleep_sets: bool,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            preemptions: 2,
            max_schedules: 100_000,
            max_steps: 5_000,
            seed: 0xA51E5,
            sleep_sets: true,
        }
    }
}

#[derive(Clone, Debug)]
pub struct Failure {
    pub message: String,
    /// Complete schedule reproducing the failure; feed to [`replay`].
    pub trace: Trace,
}

#[derive(Clone, Debug)]
pub struct ExploreResult {
    /// Executions that ran to a verdict (completion or failure).
    pub schedules: u64,
    /// Executions cut short by sleep-set pruning.
    pub pruned: u64,
    /// Total scheduling decisions granted across all executions.
    pub decisions: u64,
    /// True iff the DFS exhausted every schedule within the preemption
    /// budget without failing and without hitting `max_schedules`.
    pub complete: bool,
    pub failure: Option<Failure>,
    pub wall: Duration,
}

/// One DFS decision node.
struct Node {
    /// Pending set observed at this decision (replay-consistency checked).
    pending: Vec<PendingOp>,
    /// Choice currently being explored below this node.
    chosen: usize,
    /// Sleep set at entry plus every already-explored choice `(tid, obj)`.
    sleep: Vec<(usize, u32)>,
    /// Preemptions consumed by the prefix above this node.
    base_preempt: usize,
    prev: Option<usize>,
    prev_enabled: bool,
    quantum_hit: bool,
}

fn preempt_cost(node: &Node, tid: usize) -> usize {
    if node.quantum_hit {
        // Past a full quantum the *fair* move is rotating away; keeping the
        // same thread running while another is runnable is the scheduling
        // perturbation that needs budget. Without this charge, backtracking
        // at quantum nodes extends a spin loop (WAL help-drain, pool latch
        // back-off) by one free quantum per schedule until the step cap —
        // the starved thread's pending op never conflicts with the
        // spinner's, so no other mechanism reins the schedule in.
        let others = node.pending.iter().any(|p| p.enabled && Some(p.tid) != node.prev);
        usize::from(node.prev == Some(tid) && others)
    } else {
        usize::from(node.prev_enabled && node.prev != Some(tid))
    }
}

struct DfsSched<'a> {
    stack: &'a mut Vec<Node>,
    depth: usize,
    cur_sleep: Vec<(usize, u32)>,
    preempt: usize,
    rng: XorShift,
    sleep_sets: bool,
}

impl Scheduler for DfsSched<'_> {
    fn choose(
        &mut self,
        step: usize,
        prev: Option<usize>,
        run_len: usize,
        pending: &[PendingOp],
    ) -> Option<usize> {
        let chosen;
        if self.depth < self.stack.len() {
            // Replaying the recorded prefix.
            let node = &self.stack[self.depth];
            assert_eq!(
                node.pending, pending,
                "model: harness is nondeterministic — pending set diverged \
                 from the recorded prefix at step {step}"
            );
            self.cur_sleep.clone_from(&node.sleep);
            chosen = node.chosen;
        } else {
            // Fresh frontier: pick by the default policy and push a node.
            let quantum_hit = run_len >= QUANTUM;
            let enabled: Vec<usize> = pending.iter().filter(|p| p.enabled).map(|p| p.tid).collect();
            let selectable: Vec<usize> = if self.sleep_sets {
                enabled
                    .iter()
                    .copied()
                    .filter(|t| !self.cur_sleep.iter().any(|&(st, _)| st == *t))
                    .collect()
            } else {
                enabled.clone()
            };
            if selectable.is_empty() {
                // Everything runnable sleeps: this execution only commutes
                // independent steps of one already explored.
                return None;
            }
            let prev_enabled = prev.is_some_and(|p| enabled.contains(&p));
            chosen = match prev {
                Some(p) if selectable.contains(&p) && !quantum_hit => p,
                Some(p) if prev_enabled && quantum_hit => {
                    // Fairness switch: cyclically next *enabled* thread,
                    // deliberately ignoring the sleep set. A spin loop's ops
                    // (lock-free WAL drain: load/try_lock/yield) may never
                    // conflict with a sleeper's pending op, so a rotation
                    // restricted to `selectable` would starve the sleeper
                    // forever and run the spinner into the step cap. Waking
                    // a sleeper early costs pruning, never soundness — the
                    // choose-time retain below clears its sleep entries.
                    enabled.iter().copied().find(|&t| t > p).unwrap_or(enabled[0])
                }
                _ => selectable[self.rng.below(selectable.len())],
            };
            self.stack.push(Node {
                pending: pending.to_vec(),
                chosen,
                // Without sleep-set pruning a fresh node starts wide awake;
                // its `sleep` vec then only tracks explored choices.
                sleep: if self.sleep_sets {
                    self.cur_sleep.clone()
                } else {
                    Vec::new()
                },
                base_preempt: self.preempt,
                prev,
                prev_enabled,
                quantum_hit,
            });
        }
        // Wake sleepers whose op conflicts (same object) with the chosen op,
        // and account the preemption if we switched off a runnable thread.
        let op = pending
            .iter()
            .find(|p| p.tid == chosen)
            .expect("model: recorded choice not pending");
        self.cur_sleep.retain(|&(t, o)| t != chosen && o != op.obj);
        let node = &self.stack[self.depth];
        self.preempt += preempt_cost(node, chosen);
        self.depth += 1;
        Some(chosen)
    }
}

/// Retire the deepest node's current choice and advance to the next
/// in-budget alternative; pop exhausted nodes. Returns false when the whole
/// in-budget tree is explored.
fn backtrack(stack: &mut Vec<Node>, bound: usize) -> bool {
    while let Some(node) = stack.last_mut() {
        let cop = node
            .pending
            .iter()
            .find(|p| p.tid == node.chosen)
            .expect("model: node chose a thread with no pending op");
        node.sleep.push((node.chosen, cop.obj));
        let alt = node
            .pending
            .iter()
            .filter(|p| p.enabled)
            .map(|p| p.tid)
            .find(|&t| {
                !node.sleep.iter().any(|&(st, _)| st == t)
                    && node.base_preempt + preempt_cost(node, t) <= bound
            });
        if let Some(t) = alt {
            node.chosen = t;
            return true;
        }
        stack.pop();
    }
    false
}

/// Explore `body`'s schedules under `opts`. Stops at the first failure (with
/// a replayable trace), on exhausting the in-budget tree (`complete`), or on
/// `max_schedules`.
pub fn explore<F>(name: &str, opts: &ModelOptions, body: F) -> ExploreResult
where
    F: Fn(&mut Env) + Send + Sync + 'static,
{
    let body = Arc::new(body);
    let start = Instant::now();
    let mut stack: Vec<Node> = Vec::new();
    let mut schedules = 0u64;
    let mut pruned = 0u64;
    let mut decisions = 0u64;
    loop {
        let mut sched = DfsSched {
            stack: &mut stack,
            depth: 0,
            cur_sleep: Vec::new(),
            preempt: 0,
            rng: XorShift::new(opts.seed),
            sleep_sets: opts.sleep_sets,
        };
        let out = run_schedule(body.clone(), &mut sched, opts.max_steps);
        decisions += out.steps.len() as u64;
        if out.pruned {
            pruned += 1;
        } else {
            schedules += 1;
        }
        if let Some(message) = out.failure {
            let trace = Trace {
                harness: name.to_string(),
                seed: opts.seed,
                preemptions: opts.preemptions,
                schedule: schedules,
                steps: out.steps,
                failure: Some(message.clone()),
            };
            return ExploreResult {
                schedules,
                pruned,
                decisions,
                complete: false,
                failure: Some(Failure { message, trace }),
                wall: start.elapsed(),
            };
        }
        if !backtrack(&mut stack, opts.preemptions) {
            return ExploreResult {
                schedules,
                pruned,
                decisions,
                complete: true,
                failure: None,
                wall: start.elapsed(),
            };
        }
        if schedules + pruned >= opts.max_schedules {
            return ExploreResult {
                schedules,
                pruned,
                decisions,
                complete: false,
                failure: None,
                wall: start.elapsed(),
            };
        }
    }
}

#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// The failure the replayed schedule produced, if any.
    pub failure: Option<String>,
    /// Steps actually executed (equals the trace prefix that applied).
    pub steps: Vec<Step>,
    /// Set when the execution stopped following the trace (wrong pending
    /// set, disabled thread, trace exhausted early).
    pub diverged: Option<String>,
}

struct ReplaySched<'a> {
    steps: &'a [Step],
    at: usize,
    diverged: Option<String>,
}

impl Scheduler for ReplaySched<'_> {
    fn choose(
        &mut self,
        step: usize,
        _prev: Option<usize>,
        _run_len: usize,
        pending: &[PendingOp],
    ) -> Option<usize> {
        let Some(s) = self.steps.get(self.at) else {
            self.diverged = Some(format!(
                "execution needs a decision at step {step} but the trace ended"
            ));
            return None;
        };
        match pending.iter().find(|p| p.tid == s.tid) {
            Some(p) if p.enabled && p.kind == s.kind && p.obj == s.obj => {
                self.at += 1;
                Some(s.tid)
            }
            _ => {
                self.diverged = Some(format!(
                    "trace diverged at step {step}: recorded t{} {}(obj{})",
                    s.tid,
                    s.kind.name(),
                    s.obj
                ));
                None
            }
        }
    }
}

/// Re-execute exactly the schedule in `trace` against `body`. Deterministic:
/// the same trace against the same harness yields the same outcome.
pub fn replay<F>(trace: &Trace, body: F) -> ReplayOutcome
where
    F: Fn(&mut Env) + Send + Sync + 'static,
{
    let mut sched = ReplaySched {
        steps: &trace.steps,
        at: 0,
        diverged: None,
    };
    let out = run_schedule(Arc::new(body), &mut sched, trace.steps.len() + 1);
    ReplayOutcome {
        failure: out.failure,
        steps: out.steps,
        diverged: sched.diverged,
    }
}
