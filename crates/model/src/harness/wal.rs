//! WAL harness: `flush_to`'s lock-free durable-LSN mirror.
//!
//! `LogManager` keeps the durable end of the log twice: the truth inside
//! the inner mutex, and an `AtomicU64` mirror that `flush_to`'s fast path
//! and `flushed_lsn()` read without the lock. The protocol's invariant is
//! that the mirror may *lag* the locked truth but never lead it — a mirror
//! that ran ahead would let `flush_to` return before the log hit disk,
//! breaking the WAL rule; a mirror that lagged forever would only cost an
//! extra lock acquisition. The harness races two append+flush threads and
//! asserts each sees its own LSN covered by the mirror after its flush.

use std::sync::Arc;

use ariesim_common::stats::new_stats;
use ariesim_common::tmp::TempDir;
use ariesim_common::{Lsn, PageId, TxnId};
use ariesim_wal::{LogManager, LogOptions, LogRecord, RmId};

use crate::runtime::Env;

pub fn flush_mirror(env: &mut Env) {
    let dir = TempDir::new("model-wal");
    let stats = new_stats();
    let log = Arc::new(
        LogManager::open(&dir.file("wal"), LogOptions::default(), stats).expect("open log"),
    );
    let base = log.flushed_lsn();
    for t in 0..2u32 {
        let log = log.clone();
        env.spawn(move || {
            let lsn = log.append(&LogRecord::update(
                TxnId(u64::from(t) + 1),
                Lsn::NULL,
                RmId::Heap,
                PageId(t + 1),
                vec![t as u8],
            ));
            log.flush_to(lsn).expect("flush_to");
            // The mirror may lag the locked durable_end, never lead it; a
            // completed flush_to(lsn) must therefore be visible through it.
            assert!(
                log.flushed_lsn() >= lsn,
                "durable-LSN mirror ran behind a completed flush"
            );
        });
    }
    env.join();
    assert!(log.flushed_lsn() > base, "mirror never advanced");
}
