//! WAL harnesses: the lock-free append/flush pipeline.
//!
//! Three protocols, checked separately:
//!
//! * [`flush_mirror`] — `LogManager` keeps the durable end of the log
//!   twice: the truth inside the inner mutex, and an `AtomicU64` mirror
//!   that `flush_to`'s fast path and `flushed_lsn()` read without the
//!   lock. The mirror may *lag* the locked truth but never lead it — a
//!   mirror that ran ahead would let `flush_to` return before the log hit
//!   disk, breaking the WAL rule.
//! * [`ring_publish`] — the lock-free reservation ring with segments so
//!   small that every frame spans a segment boundary, forcing torn
//!   (multi-window) publications. The drain side must only advance over
//!   fully published prefixes, so the durable mirror can never read ahead
//!   of the published watermark.
//! * [`group_commit`] — append + leader-elected group flush racing a
//!   concurrent append + buffered read: flush_to must return only once the
//!   caller's LSN is durable, and a buffered record must read back while a
//!   flush is in flight.

use std::sync::Arc;

use ariesim_common::stats::new_stats;
use ariesim_common::tmp::TempDir;
use ariesim_common::{Lsn, PageId, TxnId};
use ariesim_wal::{LogManager, LogOptions, LogRecord, RmId};

use crate::runtime::Env;

pub fn flush_mirror(env: &mut Env) {
    let dir = TempDir::new("model-wal");
    let stats = new_stats();
    let log = Arc::new(
        LogManager::open(&dir.file("wal"), LogOptions::default(), stats).expect("open log"),
    );
    let base = log.flushed_lsn();
    for t in 0..2u32 {
        let log = log.clone();
        env.spawn(move || {
            let lsn = log.append(&LogRecord::update(
                TxnId(u64::from(t) + 1),
                Lsn::NULL,
                RmId::Heap,
                PageId(t + 1),
                vec![t as u8],
            ));
            log.flush_to(lsn).expect("flush_to");
            // The mirror may lag the locked durable_end, never lead it; a
            // completed flush_to(lsn) must therefore be visible through it.
            assert!(
                log.flushed_lsn() >= lsn,
                "durable-LSN mirror ran behind a completed flush"
            );
        });
    }
    env.join();
    assert!(log.flushed_lsn() > base, "mirror never advanced");
}

/// Torn multi-window publications: 2 appenders into a 2×64-byte ring of
/// 56-byte frames, so the second frame straddles the segment boundary and
/// publishes in two `fetch_add`s (frames are capped at one segment by the
/// ring's cross-lap backpressure, so a frame can span at most one edge).
/// The durable mirror must never read ahead of the published watermark,
/// and each appender must read its own record back.
pub fn ring_publish(env: &mut Env) {
    let dir = TempDir::new("model-wal-ring");
    let opts = LogOptions {
        ring_segments: 2,
        ring_segment_bytes: 64,
        ..LogOptions::default()
    };
    let log = Arc::new(
        LogManager::open(&dir.file("wal"), opts, new_stats()).expect("open log"),
    );
    for t in 0..2u32 {
        let log = log.clone();
        env.spawn(move || {
            let lsn = log.append(&LogRecord::update(
                TxnId(u64::from(t) + 1),
                Lsn::NULL,
                RmId::Heap,
                PageId(t + 1),
                vec![t as u8; 18], // 56-byte frame: the 2nd spans the 64B edge
            ));
            // Snapshot order matters: mirror first, then published. The
            // mirror only covers drained (hence published) bytes, so a
            // mirror that leads publication is a protocol violation.
            let mirror = log.flushed_lsn();
            let published = log.published_lsn();
            assert!(
                mirror <= published,
                "durable mirror {mirror:?} leads published watermark {published:?}"
            );
            // Reading the own record drains through any torn reservation
            // the *other* appender has in flight (spin-to-stable).
            let rec = log.read(lsn).expect("read own buffered record");
            assert_eq!(rec.body, vec![t as u8; 18]);
        });
    }
    env.join();
    log.flush_all().expect("flush_all");
    assert_eq!(log.scan(Lsn::NULL).count(), 2, "a published record was lost");
    assert_eq!(
        log.flushed_lsn(),
        log.next_lsn(),
        "flush_all left published bytes non-durable"
    );
}

/// Leader-based group commit: one committer appends and forces, another
/// appends and reads back while the flush may be in flight. `flush_to`
/// must return only once the caller's LSN is durable.
pub fn group_commit(env: &mut Env) {
    let dir = TempDir::new("model-wal-gc");
    let log = Arc::new(
        LogManager::open(&dir.file("wal"), LogOptions::default(), new_stats())
            .expect("open log"),
    );
    {
        let log = log.clone();
        env.spawn(move || {
            let lsn = log.append(&LogRecord::update(
                TxnId(1),
                Lsn::NULL,
                RmId::Heap,
                PageId(1),
                b"commit".to_vec(),
            ));
            log.flush_to(lsn).expect("flush_to");
            assert!(
                log.flushed_lsn() > lsn,
                "flush_to returned before the record was durable"
            );
        });
    }
    {
        let log = log.clone();
        env.spawn(move || {
            let lsn = log.append(&LogRecord::update(
                TxnId(2),
                Lsn::NULL,
                RmId::Heap,
                PageId(2),
                b"buffered".to_vec(),
            ));
            let rec = log.read(lsn).expect("buffered read");
            assert_eq!(rec.body, b"buffered");
            log.flush_to(lsn).expect("flush_to");
            assert!(log.flushed_lsn() > lsn);
        });
    }
    env.join();
    assert_eq!(log.scan(Lsn::NULL).count(), 2);
}
