//! Buffer-pool harnesses: the claim/install/unwind protocol under the model.
//!
//! All three use an 8-frame single-partition pool (the smallest the pool
//! allows, and one shard keeps every thread contending on the same page
//! table — the regime the protocols were written for). Pages are seeded
//! directly through the `DiskManager` on the body thread so the virtual
//! threads start from cold frames.
//!
//! The oracles are the pool's own: `validate_mappings()` (table ↔ meta ↔
//! owner-word agreement, no orphaned frames), `total_pins() == 0` after all
//! guards drop, and each guard asserting it shows the page it was fixed
//! for. The two `model-bugs` harnesses re-run `fix_race` and
//! `failed_load_unwind` with a historical race re-injected and expect the
//! explorer to trip exactly these oracles.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ariesim_common::stats::new_stats;
use ariesim_common::tmp::TempDir;
use ariesim_common::{Error, PageBuf, PageId, PageType};
use ariesim_storage::{BufferPool, DiskManager, PoolOptions};
use ariesim_wal::{LogManager, LogOptions};

use crate::runtime::Env;

/// Fresh 8-frame single-shard pool with pages `1..=pages` seeded on disk.
fn setup(pages: u32) -> (TempDir, Arc<BufferPool>) {
    let dir = TempDir::new("model-pool");
    let stats = new_stats();
    let log = Arc::new(
        LogManager::open(&dir.file("wal"), LogOptions::default(), stats.clone())
            .expect("open log"),
    );
    let disk = DiskManager::open(&dir.file("db"), stats.clone()).expect("open disk");
    for p in 1..=pages {
        let mut img = PageBuf::zeroed();
        img.format(PageId(p), PageType::Heap, 0, 0);
        disk.write_page(&img).expect("seed page");
    }
    let pool = BufferPool::new(
        disk,
        log,
        PoolOptions {
            frames: 8,
            partitions: 1,
            ..PoolOptions::default()
        },
        stats,
    );
    (dir, pool)
}

/// Two racing misses on the same page. The install path must notice a
/// winner's mapping on re-lock and back off to the hit path; the historical
/// double-install race (re-checking only the victim's pins) lets both
/// threads install the page into two different frames, which
/// `validate_mappings` reports as an orphaned frame.
pub fn fix_race(env: &mut Env) {
    let (_dir, pool) = setup(1);
    for _ in 0..2 {
        let pool = pool.clone();
        env.spawn(move || {
            let g = pool.fix_s(PageId(1)).expect("fix_s");
            assert_eq!(g.page_id(), PageId(1), "guard shows the wrong page");
        });
    }
    env.join();
    pool.validate_mappings();
    assert_eq!(pool.total_pins(), 0, "pin leaked");
}

/// A held pin must keep its frame across a concurrent eviction: the pool is
/// filled, one thread pins page 1 (clones the pin, drops the original —
/// the refcount, not the guard object, is what protects the frame) and
/// latches through the clone, while another thread fixes a ninth page and
/// forces an eviction. The victim scan must skip the pinned frame.
pub fn pin_vs_evict(env: &mut Env) {
    let (_dir, pool) = setup(9);
    for p in 1..=8 {
        pool.fix_s(PageId(p)).expect("warm pool");
    }
    {
        let pool = pool.clone();
        env.spawn(move || {
            let pin = pool.pin(PageId(1)).expect("pin");
            let pin2 = pin.clone();
            drop(pin);
            let g = pin2.latch_s().expect("latch through a live pin");
            assert_eq!(g.page_id(), PageId(1), "pinned frame was evicted");
        });
    }
    {
        let pool = pool.clone();
        env.spawn(move || {
            let g = pool.fix_s(PageId(9)).expect("eviction with 7 free frames");
            assert_eq!(g.page_id(), PageId(9), "guard shows the wrong page");
        });
    }
    env.join();
    pool.validate_mappings();
    assert_eq!(pool.total_pins(), 0, "pin leaked");
}

/// The first read of page 1 fails, so the loser of the install race unwinds
/// the mapping while the other thread may already hold a pin on the frame.
/// Latch acquisition's owner re-check must turn that pin into
/// `Error::StalePin` (and `fix_s` then retries cleanly); the historical bug
/// skipped the re-check and handed out a latch on a frame holding garbage.
pub fn failed_load_unwind(env: &mut Env) {
    let (_dir, pool) = setup(1);
    let tripped = Arc::new(AtomicBool::new(false));
    let t = tripped.clone();
    pool.disk().set_read_hook(Some(Arc::new(move |pid| {
        // ordering: one-shot trip flag read and written on the faulting
        // path only; no data is published through it.
        if pid == PageId(1) && !t.swap(true, Ordering::Relaxed) {
            Err(Error::Io(std::io::Error::other("injected read fault")))
        } else {
            Ok(())
        }
    })));
    for _ in 0..2 {
        let pool = pool.clone();
        env.spawn(move || match pool.fix_s(PageId(1)) {
            Ok(g) => assert_eq!(
                g.page_id(),
                PageId(1),
                "stale pin survived the owner re-check"
            ),
            // Whichever thread drew the injected fault propagates it.
            Err(Error::Io(_)) => {}
            Err(e) => panic!("unexpected error: {e}"),
        });
    }
    env.join();
    pool.disk().set_read_hook(None);
    pool.validate_mappings();
    assert_eq!(pool.total_pins(), 0, "pin leaked");
}
