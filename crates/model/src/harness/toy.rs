//! Toy harnesses: known-racy and known-correct counters.
//!
//! These exercise the checker itself (facade atomics, `yield_point!`, mutex
//! modeling, failure capture) with a state space small enough to enumerate
//! by hand, and they anchor the determinism tests: their failure messages
//! contain no addresses, paths or iteration-order artifacts, so the whole
//! trace must be byte-identical run to run.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use ariesim_common::msync::AtomicU32;

use crate::runtime::Env;

/// Deliberate race: the increment is a separate facade load and store, so
/// two threads interleaving between them lose an update.
pub fn lost_update(env: &mut Env) {
    let c = Arc::new(AtomicU32::new(0));
    for _ in 0..2 {
        let c = c.clone();
        env.spawn(move || {
            // ordering: the race under test is the non-atomicity of the
            // load/store pair, not the memory orders.
            let v = c.load(Ordering::Acquire);
            ariesim_common::yield_point!();
            // ordering: see the load above.
            c.store(v + 1, Ordering::Release);
        });
    }
    env.join();
    // ordering: single-threaded again after join.
    assert_eq!(c.load(Ordering::Acquire), 2, "lost update");
}

/// The correct twin: the read-modify-write runs under a mutex. Exploration
/// must complete without a failure.
pub fn mutex_counter(env: &mut Env) {
    let c = Arc::new(parking_lot::Mutex::new(0u32));
    for _ in 0..2 {
        let c = c.clone();
        env.spawn(move || {
            let mut g = c.lock();
            *g += 1;
        });
    }
    env.join();
    assert_eq!(*c.lock(), 2, "mutex counter lost an update");
}
