//! Harness registry: the protocols the checker explores.
//!
//! A harness is a plain function over [`Env`]: setup on the body thread
//! (unscheduled), `env.spawn` for each virtual thread, `env.join`, then
//! final assertions against the settled state. Every assertion — inside the
//! virtual threads or after the join — is an oracle the explorer can trip.
//!
//! Two kinds of expectations:
//!
//! * [`Expect::Pass`] — the protocol is believed correct; exploration must
//!   complete (or exhaust its budget) without a failure;
//! * [`Expect::Race`] — the harness is *supposed* to fail: either a toy
//!   with a deliberate race, or a fixed harness re-run against one of the
//!   re-injected historical pool bugs ([`BugKind`], `model-bugs` feature).
//!   The checker proving it still finds those is the regression oracle for
//!   the checker itself.

use crate::explore::{explore, replay, ExploreResult, ModelOptions, ReplayOutcome};
use crate::runtime::Env;
use crate::trace::Trace;

pub mod pool;
pub mod toy;
pub mod wal;

/// What a correct checker run looks like for a harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expect {
    /// No schedule may fail.
    Pass,
    /// Some schedule must fail (deliberate race or armed bug).
    Race,
}

/// Re-injected historical pool races (see `ariesim_storage::pool::bugs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BugKind {
    DoubleInstall,
    StalePin,
}

/// Arm or disarm a re-injected bug. Process-global: callers running
/// multiple bug harnesses must serialize. Compiled to a no-op without the
/// `model-bugs` feature (the bug harnesses are absent then too).
pub fn set_bug(bug: BugKind, on: bool) {
    #[cfg(feature = "model-bugs")]
    match bug {
        BugKind::DoubleInstall => ariesim_storage::pool::bugs::arm_double_install(on),
        BugKind::StalePin => ariesim_storage::pool::bugs::arm_stale_pin(on),
    }
    #[cfg(not(feature = "model-bugs"))]
    let _ = (bug, on);
}

#[derive(Clone, Copy)]
pub struct Harness {
    pub name: &'static str,
    pub about: &'static str,
    pub expect: Expect,
    /// Bug to arm for the duration of the run (`Race` harnesses only).
    pub bug: Option<BugKind>,
    pub body: fn(&mut Env),
}

/// All harnesses, in a stable order (the `--quick` suite runs these).
pub fn registry() -> Vec<Harness> {
    let mut v = vec![
        Harness {
            name: "toy_lost_update",
            about: "deliberate unsynchronized load/store increment; the checker must find the lost update",
            expect: Expect::Race,
            bug: None,
            body: toy::lost_update,
        },
        Harness {
            name: "toy_mutex_counter",
            about: "the correct twin of toy_lost_update: increments under a mutex",
            expect: Expect::Pass,
            bug: None,
            body: toy::mutex_counter,
        },
        Harness {
            name: "pool_claim_install",
            about: "two racing misses on one page: claim/install must keep table, meta and owner words agreeing",
            expect: Expect::Pass,
            bug: None,
            body: pool::fix_race,
        },
        Harness {
            name: "pool_pin_vs_evict",
            about: "PinGuard clone/drop vs a concurrent eviction: a held pin must keep its frame",
            expect: Expect::Pass,
            bug: None,
            body: pool::pin_vs_evict,
        },
        Harness {
            name: "pool_failed_load_unwind",
            about: "failed read I/O unwinds an installed mapping while another thread pinned it; owner re-check must catch the stale pin",
            expect: Expect::Pass,
            bug: None,
            body: pool::failed_load_unwind,
        },
        Harness {
            name: "wal_flush_mirror",
            about: "LogManager::flush_to's lock-free durable-LSN mirror vs concurrent appenders: the mirror may lag, never lead",
            expect: Expect::Pass,
            bug: None,
            body: wal::flush_mirror,
        },
        Harness {
            name: "wal_ring_publish",
            about: "lock-free append ring with frames spanning segment boundaries: the durable mirror must never read ahead of published bytes",
            expect: Expect::Pass,
            bug: None,
            body: wal::ring_publish,
        },
        Harness {
            name: "wal_group_commit",
            about: "leader-elected group commit vs a concurrent append+buffered-read: flush_to returns only once the caller's LSN is durable",
            expect: Expect::Pass,
            bug: None,
            body: wal::group_commit,
        },
    ];
    v.extend(bug_harnesses());
    v
}

/// The re-injected-bug harnesses: only meaningful when the races are
/// compiled in (without the feature, arming is a no-op and the `Race`
/// expectation could never be met).
#[cfg(feature = "model-bugs")]
fn bug_harnesses() -> Vec<Harness> {
    vec![
        Harness {
            name: "pool_double_install_bug",
            about: "pool_claim_install with the historical double-install race re-injected: install re-checks pins but not the page table",
            expect: Expect::Race,
            bug: Some(BugKind::DoubleInstall),
            body: pool::fix_race,
        },
        Harness {
            name: "pool_stale_pin_bug",
            about: "pool_failed_load_unwind with the historical stale-pin race re-injected: latch acquisition skips the owner re-check",
            expect: Expect::Race,
            bug: Some(BugKind::StalePin),
            body: pool::failed_load_unwind,
        },
    ]
}

#[cfg(not(feature = "model-bugs"))]
fn bug_harnesses() -> Vec<Harness> {
    Vec::new()
}

pub fn find(name: &str) -> Option<Harness> {
    registry().into_iter().find(|h| h.name == name)
}

/// Explore a harness, arming its bug (if any) for the duration.
pub fn run(h: &Harness, opts: &ModelOptions) -> ExploreResult {
    if let Some(b) = h.bug {
        set_bug(b, true);
    }
    let body = h.body;
    let res = explore(h.name, opts, body);
    if let Some(b) = h.bug {
        set_bug(b, false);
    }
    res
}

/// Replay a recorded trace against a harness, arming its bug (if any).
pub fn run_replay(h: &Harness, trace: &Trace) -> ReplayOutcome {
    if let Some(b) = h.bug {
        set_bug(b, true);
    }
    let body = h.body;
    let res = replay(trace, body);
    if let Some(b) = h.bug {
        set_bug(b, false);
    }
    res
}
