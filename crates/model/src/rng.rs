//! Seeded xorshift64* used by the explorer's default scheduling policy.
//!
//! The only randomness in the checker: tie-breaking which thread runs when
//! the previously running thread is no longer a candidate. Everything else
//! (DFS order, sleep sets, object ids) is structural, so a fixed seed makes
//! the whole exploration — including any failure trace — byte-reproducible.

#[derive(Clone)]
pub struct XorShift(u64);

impl XorShift {
    pub fn new(seed: u64) -> Self {
        // Splitmix64 scramble so adjacent seeds give unrelated streams; a
        // zero state would be absorbing, so substitute a constant.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        XorShift(if z == 0 { 0x9e37_79b9_7f4a_7c15 } else { z })
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish pick in `0..n` (`n > 0`); modulo bias is irrelevant here —
    /// the choice only seeds diversity, soundness never depends on it.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = XorShift::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = XorShift::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = XorShift::new(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn below_in_range() {
        let mut r = XorShift::new(7);
        for _ in 0..100 {
            assert!(r.below(3) < 3);
        }
    }
}
