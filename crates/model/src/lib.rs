//! Deterministic concurrency model checker for the ARIES/IM reproduction.
//!
//! A loom/CHESS-style checker built on the workspace's own lock shim: every
//! `parking_lot` Mutex/RwLock acquire and release, every
//! `ariesim_common::msync` facade atomic, and every explicit
//! `yield_point!()` is a *schedule point* reported to a controller, which
//! runs N virtual threads one step at a time and systematically explores
//! their interleavings (preemption-bounded DFS with sleep-set pruning, see
//! [`explore`]). Assertion failures, deadlocks and livelocks come back with
//! a replayable JSONL schedule trace ([`trace::Trace`], `model replay`).
//!
//! What it checks today ([`harness`]): the buffer pool's claim / install /
//! failed-load-unwind protocol and pin-vs-eviction dance, and the WAL's
//! lock-free durable-LSN mirror — the two places this codebase does
//! cross-thread reasoning outside a single mutex. Under the `model-bugs`
//! feature the two historical pool races are re-injected (runtime-armed)
//! and the checker's tests assert it rediscovers both.
//!
//! Known model limitations, deliberate for now:
//!
//! * `Condvar` is not intercepted — the shim asserts if a model thread
//!   waits on one (only the lock manager does, and it has no harness yet);
//! * the RwLock model ignores writer-queue fairness: under the model a
//!   writer never sits in the real wait queue (acquires are granted only
//!   when they cannot block), so real try-acquires agree with the model and
//!   the explored space is a superset of the shim's fair schedules;
//! * guards must be released on the virtual thread that acquired them.

mod explore;
mod runtime;

pub mod harness;
pub mod rng;
pub mod trace;

pub use explore::{
    explore, replay, ExploreResult, Failure, ModelOptions, ReplayOutcome, QUANTUM,
};
pub use runtime::Env;
