//! Replayable schedule traces, serialized as JSONL.
//!
//! Line 1 is a header object (harness, seed, preemption bound, index of the
//! schedule within the exploration); each subsequent `step` line is one
//! scheduling decision; an optional trailing `failure` line carries the
//! assertion/deadlock message. The format is hand-rolled (the workspace has
//! no JSON dependency) and deliberately flat — every value is a u64, a bool,
//! or an escaped string — so the parser below is a few string scans.
//!
//! Object ids are the controller's small first-seen ordinals, not addresses,
//! which is what makes a trace stable across processes: re-executing the
//! same decisions makes the same objects appear in the same order.

use parking_lot::sched::OpKind;

/// One scheduling decision: virtual thread `tid` executed `op` on object
/// `obj`. `ok` records the dictated outcome of a try-op (always `true` for
/// everything else).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Step {
    pub tid: usize,
    pub kind: OpKind,
    pub obj: u32,
    pub ok: bool,
}

/// A complete schedule: enough to re-execute one interleaving exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    pub harness: String,
    pub seed: u64,
    pub preemptions: usize,
    /// 1-based index of this schedule within the exploration that produced
    /// it (diagnostic only; replay does not use it).
    pub schedule: u64,
    pub steps: Vec<Step>,
    pub failure: Option<String>,
}

impl Trace {
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"harness\":\"{}\",\"seed\":{},\"preemptions\":{},\"schedule\":{}}}\n",
            esc(&self.harness),
            self.seed,
            self.preemptions,
            self.schedule
        ));
        for (i, s) in self.steps.iter().enumerate() {
            out.push_str(&format!(
                "{{\"step\":{},\"tid\":{},\"op\":\"{}\",\"obj\":{},\"ok\":{}}}\n",
                i,
                s.tid,
                s.kind.name(),
                s.obj,
                s.ok
            ));
        }
        if let Some(f) = &self.failure {
            out.push_str(&format!("{{\"failure\":\"{}\"}}\n", esc(f)));
        }
        out
    }

    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty trace")?;
        let harness = field_str(header, "harness").ok_or("header missing \"harness\"")?;
        let seed = field_u64(header, "seed").ok_or("header missing \"seed\"")?;
        let preemptions =
            field_u64(header, "preemptions").ok_or("header missing \"preemptions\"")? as usize;
        let schedule = field_u64(header, "schedule").unwrap_or(0);
        let mut steps = Vec::new();
        let mut failure = None;
        for (n, line) in lines.enumerate() {
            if let Some(f) = field_str(line, "failure") {
                failure = Some(f);
                continue;
            }
            let tid = field_u64(line, "tid").ok_or_else(|| format!("line {}: no tid", n + 2))?;
            let op = field_str(line, "op").ok_or_else(|| format!("line {}: no op", n + 2))?;
            let kind =
                OpKind::parse(&op).ok_or_else(|| format!("line {}: unknown op {op:?}", n + 2))?;
            let obj = field_u64(line, "obj").ok_or_else(|| format!("line {}: no obj", n + 2))?;
            let ok = field_bool(line, "ok").unwrap_or(true);
            steps.push(Step {
                tid: tid as usize,
                kind,
                obj: obj as u32,
                ok,
            });
        }
        Ok(Trace {
            harness,
            seed,
            preemptions,
            schedule,
            steps,
            failure,
        })
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = it.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

/// Scan `line` for `"key":<value>` and return the raw value slice.
fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    if let Some(stripped) = rest.strip_prefix('"') {
        // String value: scan to the closing unescaped quote.
        let mut esc = false;
        for (i, c) in stripped.char_indices() {
            match c {
                '\\' if !esc => esc = true,
                '"' if !esc => return Some(&stripped[..i]),
                _ => esc = false,
            }
        }
        None
    } else {
        let end = rest
            .find([',', '}'])
            .unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    field_raw(line, key)?.parse().ok()
}

fn field_bool(line: &str, key: &str) -> Option<bool> {
    match field_raw(line, key)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    if !line.contains(&pat) {
        return None;
    }
    Some(unesc(field_raw(line, key)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let t = Trace {
            harness: "toy_lost_update".into(),
            seed: 42,
            preemptions: 2,
            schedule: 7,
            steps: vec![
                Step {
                    tid: 0,
                    kind: OpKind::ThreadStart,
                    obj: 0,
                    ok: true,
                },
                Step {
                    tid: 1,
                    kind: OpKind::MutexTryLock,
                    obj: 3,
                    ok: false,
                },
            ],
            failure: Some("assertion failed: a == b\nleft: \"1\"".into()),
        };
        let text = t.to_jsonl();
        let back = Trace::parse(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Trace::parse("").is_err());
        assert!(Trace::parse("{\"harness\":\"x\",\"seed\":1,\"preemptions\":2}\n{\"nope\":1}").is_err());
    }
}
