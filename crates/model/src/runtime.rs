//! Execution of one schedule: N virtual threads under one thread of control.
//!
//! Virtual threads are real OS threads, but the controller lets exactly one
//! run at a time: each thread blocks in its [`ThreadHook`] at every schedule
//! point (lock acquires, facade atomics, `yield_point!`s) until the
//! controller grants it the next step. Blocking acquires are granted only
//! when the controller's ownership model says they cannot block, so the
//! *real* `std` primitives underneath never park a granted thread — the
//! model's enabledness decisions, not OS arbitration, pick every winner.
//! Try-acquires are always grantable; the grant dictates their outcome and
//! the real try runs only on model-success (under the one-runner invariant
//! the real primitive then agrees with the model).
//!
//! The harness body runs on its own unregistered thread: setup and final
//! assertions pass through the hooks unscheduled, and only the code between
//! `Env::spawn` and the end of `Env::join` is explored. Teardown (abort,
//! deadlock, step cap, prune) unwinds each virtual thread with a private
//! panic payload after disarming its hook, so guard drops release the real
//! locks without re-entering the controller.

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Once};

use parking_lot::sched::{self, Op, OpKind, ThreadHook};

use crate::trace::Step;

/// Panic payload used to unwind virtual threads at teardown. Never escapes
/// the runtime: the spawn wrapper swallows it.
struct ModelAbort;

std::thread_local! {
    /// Set on model-run threads so the process panic hook stays silent for
    /// their (expected, captured) panics.
    static QUIET: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static QUIET_HOOK: Once = Once::new();

fn init_quiet_panics() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

fn payload_msg(p: &(dyn Any + Send)) -> Option<String> {
    if p.is::<ModelAbort>() {
        return None;
    }
    if let Some(s) = p.downcast_ref::<&str>() {
        return Some((*s).to_string());
    }
    if let Some(s) = p.downcast_ref::<String>() {
        return Some(s.clone());
    }
    Some("<non-string panic payload>".to_string())
}

enum Event {
    /// Sent from the body thread, in spawn order, before the OS thread exists.
    Spawned { tid: usize, grant: Sender<Grant> },
    /// Virtual thread `tid` is blocked at a schedule point.
    At { tid: usize, op: Op },
    /// Virtual thread `tid` completed a release-class op (non-blocking).
    ReleaseEv { tid: usize, op: Op },
    /// Virtual thread `tid` ran to completion (or finished unwinding).
    Finished { tid: usize, panic: Option<String> },
    /// The body called `Env::join`: all spawns are in, scheduling may start.
    BodyReady { spawned: usize },
    /// The body thread finished (normally or by panic).
    BodyDone { panic: Option<String> },
}

enum Grant {
    Run { try_ok: bool },
    Abort,
}

struct VthreadHook {
    tid: usize,
    ctrl: Sender<Event>,
    grant: Receiver<Grant>,
}

impl VthreadHook {
    fn abort(&self) -> ! {
        sched::set_thread_armed(false);
        std::panic::panic_any(ModelAbort);
    }
}

impl ThreadHook for VthreadHook {
    fn schedule(&self, op: Op) -> bool {
        if self.ctrl.send(Event::At { tid: self.tid, op }).is_err() {
            self.abort();
        }
        match self.grant.recv() {
            Ok(Grant::Run { try_ok }) => try_ok,
            Ok(Grant::Abort) | Err(_) => self.abort(),
        }
    }

    fn release(&self, op: Op) {
        let _ = self.ctrl.send(Event::ReleaseEv { tid: self.tid, op });
    }
}

/// Handle the harness body uses to spawn and join virtual threads.
pub struct Env {
    ctrl: Sender<Event>,
    handles: Vec<std::thread::JoinHandle<()>>,
    spawned: usize,
    joined: bool,
}

impl Env {
    fn new(ctrl: Sender<Event>) -> Env {
        Env {
            ctrl,
            handles: Vec::new(),
            spawned: 0,
            joined: false,
        }
    }

    /// Spawn a virtual thread. It blocks before running any user code and
    /// executes only when the controller schedules it; tids are assigned in
    /// spawn order, which is what traces refer to.
    pub fn spawn<F: FnOnce() + Send + 'static>(&mut self, f: F) {
        assert!(!self.joined, "Env::spawn after Env::join");
        let tid = self.spawned;
        self.spawned += 1;
        let (gtx, grx) = channel::<Grant>();
        let _ = self.ctrl.send(Event::Spawned { tid, grant: gtx });
        let ctrl = self.ctrl.clone();
        let h = std::thread::Builder::new()
            .name(format!("model-t{tid}"))
            .spawn(move || {
                QUIET.with(|q| q.set(true));
                let hook = Rc::new(VthreadHook {
                    tid,
                    ctrl: ctrl.clone(),
                    grant: grx,
                });
                sched::install_thread_hook(hook);
                let res = catch_unwind(AssertUnwindSafe(|| {
                    // First schedule point, before any user code: makes the
                    // thread's very existence a scheduling decision.
                    sched::acquire_point(OpKind::ThreadStart, tid);
                    f();
                }));
                sched::clear_thread_hook();
                let panic = match res {
                    Ok(()) => None,
                    Err(p) => payload_msg(&*p),
                };
                let _ = ctrl.send(Event::Finished { tid, panic });
            })
            .expect("spawn model vthread");
        self.handles.push(h);
    }

    /// Release the scheduler (spawned threads only start running now) and
    /// block until every virtual thread has finished. The body's code after
    /// `join` — final assertions — runs unscheduled against the settled
    /// state.
    pub fn join(&mut self) {
        if !self.joined {
            self.joined = true;
            let _ = self.ctrl.send(Event::BodyReady {
                spawned: self.spawned,
            });
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One thread's pending operation as the scheduler sees it: `obj` is the
/// small first-seen ordinal, `enabled` is the ownership model's verdict,
/// `try_ok` the outcome a try-op would be dictated (meaningless otherwise).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct PendingOp {
    pub tid: usize,
    pub kind: OpKind,
    pub obj: u32,
    pub enabled: bool,
    pub try_ok: bool,
}

/// Scheduling policy driving one execution. `choose` returns the tid to run
/// next (must be enabled), or `None` to prune the execution (sleep sets /
/// replay divergence) — the runtime then aborts all threads quietly.
pub(crate) trait Scheduler {
    fn choose(
        &mut self,
        step: usize,
        prev: Option<usize>,
        run_len: usize,
        pending: &[PendingOp],
    ) -> Option<usize>;
}

pub(crate) struct ExecOutcome {
    pub steps: Vec<Step>,
    /// First failure observed: a virtual-thread panic, a body-assert panic,
    /// a deadlock, or the step cap. `None` for clean or pruned executions.
    pub failure: Option<String>,
    pub pruned: bool,
}

/// The controller's model of one lock's ownership. Atomics/yields carry no
/// state; mutexes only ever set `excl`.
#[derive(Default)]
struct LockState {
    excl: bool,
    shared: u32,
}

fn classify(kind: OpKind, st: &LockState) -> (bool, bool) {
    match kind {
        OpKind::MutexLock => (!st.excl, true),
        OpKind::RwShared | OpKind::RwSharedRecursive => (!st.excl, true),
        OpKind::RwExclusive => (!st.excl && st.shared == 0, true),
        OpKind::MutexTryLock => (true, !st.excl),
        OpKind::RwTryShared | OpKind::RwTrySharedRecursive => (true, !st.excl),
        OpKind::RwTryExclusive => (true, !st.excl && st.shared == 0),
        _ => (true, true),
    }
}

fn apply_acquire(st: &mut LockState, kind: OpKind, ok: bool) {
    match kind {
        OpKind::MutexLock | OpKind::RwExclusive => st.excl = true,
        OpKind::RwShared | OpKind::RwSharedRecursive => st.shared += 1,
        OpKind::MutexTryLock | OpKind::RwTryExclusive if ok => st.excl = true,
        OpKind::RwTryShared | OpKind::RwTrySharedRecursive if ok => st.shared += 1,
        _ => {}
    }
}

fn apply_release(st: &mut LockState, kind: OpKind) {
    match kind {
        OpKind::MutexUnlock | OpKind::RwUnlockExclusive => st.excl = false,
        OpKind::RwUnlockShared => st.shared = st.shared.saturating_sub(1),
        OpKind::RwDowngrade => {
            st.excl = false;
            st.shared += 1;
        }
        _ => {}
    }
}

enum TState {
    /// Spawned, grant channel live, not yet at a schedule point.
    Starting,
    /// Blocked at a schedule point.
    Waiting(Op),
    /// Granted a step; running until its next event.
    Running,
    Done,
}

struct Thr {
    grant: Sender<Grant>,
    state: TState,
}

/// Execute one schedule of `body` under `scheduler`. Deterministic given the
/// scheduler's decisions: object ids are first-seen ordinals, thread ids are
/// spawn order, and all cross-thread communication is the single event
/// channel.
pub(crate) fn run_schedule<F>(
    body: Arc<F>,
    scheduler: &mut dyn Scheduler,
    max_steps: usize,
) -> ExecOutcome
where
    F: Fn(&mut Env) + Send + Sync + 'static,
{
    init_quiet_panics();
    let (tx, rx) = channel::<Event>();
    let body_tx = tx.clone();
    drop(tx);
    let body_handle = std::thread::Builder::new()
        .name("model-body".into())
        .spawn(move || {
            QUIET.with(|q| q.set(true));
            let mut env = Env::new(body_tx.clone());
            let res = catch_unwind(AssertUnwindSafe(|| (*body)(&mut env)));
            let panic = match res {
                Ok(()) if !env.joined && env.spawned > 0 => {
                    Some("harness body returned without calling env.join()".to_string())
                }
                Ok(()) => None,
                Err(p) => payload_msg(&*p),
            };
            let _ = body_tx.send(Event::BodyDone { panic });
            // If the body died before join(), reap the still-live vthreads
            // here (the controller aborts them on seeing BodyDone).
            for h in env.handles.drain(..) {
                let _ = h.join();
            }
        })
        .expect("spawn model body");

    let mut threads: Vec<Thr> = Vec::new();
    let mut locks: HashMap<u32, LockState> = HashMap::new();
    let mut objs: HashMap<usize, u32> = HashMap::new();
    let mut steps: Vec<Step> = Vec::new();
    let mut failure: Option<String> = None;
    let mut pruned = false;
    let mut body_done: Option<Option<String>> = None;
    let mut expected: Option<usize> = None;

    fn small(objs: &mut HashMap<usize, u32>, raw: usize) -> u32 {
        let next = objs.len() as u32;
        *objs.entry(raw).or_insert(next)
    }

    let recv = |rx: &Receiver<Event>| rx.recv().expect("model: event channel closed");

    // Phase 1: wait for every spawned thread to reach its start point and
    // the body to park in join() — or for the body to die early.
    loop {
        match recv(&rx) {
            Event::Spawned { tid, grant } => {
                assert_eq!(tid, threads.len(), "model: spawn order violated");
                threads.push(Thr {
                    grant,
                    state: TState::Starting,
                });
            }
            Event::At { tid, op } => threads[tid].state = TState::Waiting(op),
            Event::BodyReady { spawned } => expected = Some(spawned),
            Event::BodyDone { panic } => {
                body_done = Some(panic);
                break;
            }
            Event::Finished { tid, .. } => threads[tid].state = TState::Done,
            Event::ReleaseEv { .. } => unreachable!("model: release before first grant"),
        }
        if let Some(n) = expected {
            if threads.len() == n
                && threads
                    .iter()
                    .all(|t| matches!(t.state, TState::Waiting(_) | TState::Done))
            {
                break;
            }
        }
    }

    if let Some(panic) = &body_done {
        // Body died before scheduling began (setup panic, or returned
        // without join): abort whatever was spawned.
        failure = panic.clone().or_else(|| {
            (!threads.is_empty())
                .then(|| "harness body exited before scheduling began".to_string())
        });
        abort_all(&mut threads, &rx);
    } else {
        // Phase 2: the scheduling loop.
        let mut prev: Option<usize> = None;
        let mut run_len = 0usize;
        while threads.iter().any(|t| !matches!(t.state, TState::Done)) {
            let pending: Vec<PendingOp> = threads
                .iter()
                .enumerate()
                .filter_map(|(tid, t)| match t.state {
                    TState::Waiting(op) => {
                        let sid = small(&mut objs, op.obj);
                        let st = locks.entry(sid).or_default();
                        let (enabled, try_ok) = classify(op.kind, st);
                        Some(PendingOp {
                            tid,
                            kind: op.kind,
                            obj: sid,
                            enabled,
                            try_ok,
                        })
                    }
                    _ => None,
                })
                .collect();
            if !pending.iter().any(|p| p.enabled) {
                failure = Some(format!("deadlock: {}", describe(&pending)));
                abort_all(&mut threads, &rx);
                break;
            }
            if steps.len() >= max_steps {
                failure = Some(format!(
                    "step cap ({max_steps}) exceeded — livelock or runaway schedule"
                ));
                abort_all(&mut threads, &rx);
                break;
            }
            let Some(tid) = scheduler.choose(steps.len(), prev, run_len, &pending) else {
                pruned = true;
                abort_all(&mut threads, &rx);
                break;
            };
            let p = *pending
                .iter()
                .find(|p| p.tid == tid)
                .expect("model: scheduler chose a thread with no pending op");
            assert!(p.enabled, "model: scheduler chose a disabled thread");
            apply_acquire(locks.entry(p.obj).or_default(), p.kind, p.try_ok);
            threads[tid].state = TState::Running;
            threads[tid]
                .grant
                .send(Grant::Run { try_ok: p.try_ok })
                .expect("model: grant channel closed");
            steps.push(Step {
                tid,
                kind: p.kind,
                obj: p.obj,
                ok: p.try_ok,
            });
            run_len = if prev == Some(tid) { run_len + 1 } else { 1 };
            prev = Some(tid);
            // Run the granted thread to its next schedule point, folding in
            // the releases it performs along the way.
            loop {
                match recv(&rx) {
                    Event::ReleaseEv { tid: rtid, op } => {
                        debug_assert_eq!(rtid, tid, "model: release from a non-running thread");
                        let sid = small(&mut objs, op.obj);
                        apply_release(locks.entry(sid).or_default(), op.kind);
                    }
                    Event::At { tid: atid, op } => {
                        debug_assert_eq!(atid, tid, "model: event from a non-running thread");
                        threads[atid].state = TState::Waiting(op);
                        break;
                    }
                    Event::Finished { tid: ftid, panic } => {
                        threads[ftid].state = TState::Done;
                        if failure.is_none() {
                            failure = panic;
                        }
                        break;
                    }
                    _ => unreachable!("model: unexpected event during quantum"),
                }
            }
            if failure.is_some() {
                abort_all(&mut threads, &rx);
                break;
            }
        }
    }

    // Phase 3: wait for the body (its join() returns once all vthreads are
    // done, then its final assertions run unscheduled).
    if body_done.is_none() {
        loop {
            // Non-BodyDone events here are releases from the body's own
            // teardown path: harmless, drain and keep waiting.
            if let Event::BodyDone { panic } = recv(&rx) {
                body_done = Some(panic);
                break;
            }
        }
    }
    // A pruned execution aborts its threads mid-flight, so the body's
    // post-join assertions ran against a half-done state: not evidence.
    if failure.is_none() && !pruned {
        failure = body_done.flatten();
    }
    let _ = body_handle.join();
    ExecOutcome {
        steps,
        failure,
        pruned,
    }
}

/// Unwind every live virtual thread and wait for all of them to finish.
/// Called only when no thread holds a grant (all Waiting/Starting/Done).
fn abort_all(threads: &mut [Thr], rx: &Receiver<Event>) {
    for t in threads.iter() {
        if matches!(t.state, TState::Waiting(_)) {
            let _ = t.grant.send(Grant::Abort);
        }
    }
    while threads.iter().any(|t| !matches!(t.state, TState::Done)) {
        match rx.recv() {
            // A Starting thread reaches its first schedule point mid-abort:
            // turn it right around.
            Ok(Event::At { tid, .. }) => {
                let _ = threads[tid].grant.send(Grant::Abort);
            }
            Ok(Event::Finished { tid, .. }) => threads[tid].state = TState::Done,
            Ok(_) => {}
            Err(_) => break,
        }
    }
}

fn describe(pending: &[PendingOp]) -> String {
    pending
        .iter()
        .map(|p| format!("t{} blocked at {}(obj{})", p.tid, p.kind.name(), p.obj))
        .collect::<Vec<_>>()
        .join("; ")
}
