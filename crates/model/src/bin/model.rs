//! Model-checker CLI.
//!
//! ```text
//! model --list                         # harnesses and expectations
//! model --quick                        # CI preset: run every harness, check expectations
//! model --harness NAME [--preemptions N] [--seed S] [--max-schedules N]
//! model replay <trace.jsonl>           # re-execute a recorded schedule exactly
//! ```
//!
//! Exit codes: 0 = expectations met, 1 = a harness misbehaved (a Pass
//! harness failed, a Race harness survived, or a replay diverged), 2 = bad
//! usage. `--quick` writes every failure trace under `target/model/` so a
//! CI log line is always one `model replay` away from a local repro.

use std::path::PathBuf;
use std::process::ExitCode;

use ariesim_model::harness::{self, Expect, Harness};
use ariesim_model::trace::Trace;
use ariesim_model::{ExploreResult, ModelOptions};

fn usage() -> ExitCode {
    eprintln!(
        "usage: model --list\n       model --quick [--preemptions N] [--seed S]\n       \
         model --harness NAME [--preemptions N] [--seed S] [--max-schedules N] [--trace-out FILE]\n       \
         model replay <trace.jsonl>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    if args[0] == "replay" {
        return cmd_replay(&args[1..]);
    }

    let mut opts = ModelOptions::default();
    let mut list = false;
    let mut quick = false;
    let mut name: Option<String> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => list = true,
            "--quick" => quick = true,
            "--harness" => match it.next() {
                Some(n) => name = Some(n.clone()),
                None => return usage(),
            },
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--preemptions" | "--seed" | "--max-schedules" => {
                let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return usage();
                };
                match a.as_str() {
                    "--preemptions" => opts.preemptions = v as usize,
                    "--seed" => opts.seed = v,
                    _ => opts.max_schedules = v,
                }
            }
            "--no-sleep-sets" => opts.sleep_sets = false,
            _ => return usage(),
        }
    }

    if list {
        for h in harness::registry() {
            println!(
                "{:26} {:4} {}",
                h.name,
                match h.expect {
                    Expect::Pass => "pass",
                    Expect::Race => "race",
                },
                h.about
            );
        }
        return ExitCode::SUCCESS;
    }
    if quick {
        return cmd_quick(&opts);
    }
    let Some(name) = name else { return usage() };
    let Some(h) = harness::find(&name) else {
        eprintln!("model: unknown harness {name:?} (try --list)");
        return ExitCode::from(2);
    };
    let res = harness::run(&h, &opts);
    report(&h, &res, &opts);
    if let (Some(f), Some(path)) = (&res.failure, &trace_out) {
        if let Err(e) = write_trace(path, &f.trace) {
            eprintln!("model: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("model: trace written to {}", path.display());
    }
    if expectation_met(&h, &res) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The CI preset: every harness under the default bound, failure traces
/// saved under target/model/.
fn cmd_quick(opts: &ModelOptions) -> ExitCode {
    let out_dir = PathBuf::from("target/model");
    let mut ok = true;
    for h in harness::registry() {
        let res = harness::run(&h, opts);
        report(&h, &res, opts);
        if let Some(f) = &res.failure {
            let path = out_dir.join(format!("{}.trace.jsonl", h.name));
            match write_trace(&path, &f.trace) {
                Ok(()) => println!("model:   trace: {}", path.display()),
                Err(e) => eprintln!("model:   trace write failed: {e}"),
            }
        }
        if !expectation_met(&h, &res) {
            ok = false;
        }
    }
    if ok {
        println!("model: all expectations met");
        ExitCode::SUCCESS
    } else {
        println!("model: EXPECTATIONS VIOLATED");
        ExitCode::FAILURE
    }
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let [path] = args else { return usage() };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("model: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match Trace::parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("model: parsing {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(h) = harness::find(&trace.harness) else {
        eprintln!(
            "model: trace names harness {:?}, which this build does not have \
             (bug harnesses need --features model-bugs)",
            trace.harness
        );
        return ExitCode::FAILURE;
    };
    println!(
        "model: replaying {} steps against {}",
        trace.steps.len(),
        h.name
    );
    let res = harness::run_replay(&h, &trace);
    if let Some(d) = &res.diverged {
        eprintln!("model: REPLAY DIVERGED: {d}");
        return ExitCode::FAILURE;
    }
    match (&res.failure, &trace.failure) {
        (Some(got), _) => {
            println!("model: schedule failed as recorded: {got}");
            ExitCode::SUCCESS
        }
        (None, Some(want)) => {
            eprintln!("model: REPLAY PASSED but the trace recorded: {want}");
            ExitCode::FAILURE
        }
        (None, None) => {
            println!("model: schedule completed cleanly (trace recorded no failure)");
            ExitCode::SUCCESS
        }
    }
}

fn expectation_met(h: &Harness, res: &ExploreResult) -> bool {
    match h.expect {
        Expect::Pass => res.failure.is_none(),
        Expect::Race => res.failure.is_some(),
    }
}

fn report(h: &Harness, res: &ExploreResult, opts: &ModelOptions) {
    let verdict = match (&res.failure, h.expect) {
        (Some(_), Expect::Race) => "race found (expected)",
        (Some(_), Expect::Pass) => "FAILURE",
        (None, Expect::Pass) if res.complete => "pass (exhaustive)",
        (None, Expect::Pass) => "pass (budget reached)",
        (None, Expect::Race) => "RACE NOT FOUND",
    };
    println!(
        "model: {:26} {} — {} schedules (+{} pruned), {} decisions, bound {}, {:.2?}",
        h.name, verdict, res.schedules, res.pruned, res.decisions, opts.preemptions, res.wall
    );
    if let Some(f) = &res.failure {
        println!(
            "model:   schedule {} ({} steps): {}",
            f.trace.schedule,
            f.trace.steps.len(),
            first_line(&f.message)
        );
    }
}

fn first_line(s: &str) -> &str {
    s.lines().next().unwrap_or(s)
}

fn write_trace(path: &std::path::Path, trace: &Trace) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, trace.to_jsonl())
}
