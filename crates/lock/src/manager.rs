//! The lock manager proper.
//!
//! A single hash table of lock heads guarded by one mutex, with per-waiter
//! condition variables. Grant policy:
//!
//! * a **new** request is granted iff its mode is compatible with every lock
//!   granted to *other* transactions and no one is already queued (strict
//!   FIFO, which prevents starvation of X requests behind reader streams);
//! * a **conversion** (the requester already holds the name) is granted iff
//!   the target mode `sup(held, requested)` is compatible with every *other*
//!   granted lock; conversions wait at the front of the queue, ahead of new
//!   requests, as in System R;
//! * an **instant-duration** grant is never recorded: the requester only
//!   learns the lock was grantable at that instant (paper Figure 2 — the
//!   insert's next-key lock);
//! * a **conditional** request that cannot be granted immediately returns
//!   [`Error::WouldBlock`] without queueing (paper §2.2: never wait for a
//!   lock while holding latches).
//!
//! Deadlock detection runs at enqueue time: a waits-for graph is built from
//! the lock table (waiter → incompatible holder, waiter → incompatible
//! earlier waiter) and if the new waiter closes a cycle it is chosen as the
//! victim and receives [`Error::Deadlock`]. Because rolling-back transactions
//! never request locks (paper §4), victims can always be safely rolled back.

use crate::mode::{LockDuration, LockMode};
use crate::name::LockName;
use ariesim_common::stats::{Bump, StatsHandle};
use ariesim_common::{Error, Result, TxnId};
use ariesim_obs::lockdep;
use ariesim_obs::{EventKind, ModeTag, Obs, ObsHandle, SpanKind};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Duration;

/// How long an unconditional wait may take before the manager declares the
/// system wedged. This is a test-harness backstop, not part of the protocol:
/// the deadlock detector should make it unreachable.
const WAIT_WEDGE_TIMEOUT: Duration = Duration::from_secs(30);

#[derive(Debug)]
struct Granted {
    txn: TxnId,
    mode: LockMode,
    duration: LockDuration,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WaitOutcome {
    Waiting,
    Granted,
}

struct WaitCell {
    state: Mutex<WaitOutcome>,
    cv: Condvar,
}

struct Waiter {
    txn: TxnId,
    mode: LockMode,
    duration: LockDuration,
    /// Conversion of an existing grant (takes queue priority).
    convert: bool,
    cell: Arc<WaitCell>,
}

#[derive(Default)]
struct Head {
    granted: Vec<Granted>,
    queue: VecDeque<Waiter>,
}

impl Head {
    fn find_granted(&self, txn: TxnId) -> Option<usize> {
        self.granted.iter().position(|g| g.txn == txn)
    }

    fn compatible_with_others(&self, txn: TxnId, mode: LockMode) -> bool {
        self.granted
            .iter()
            .all(|g| g.txn == txn || mode.compatible_with(g.mode))
    }
}

#[derive(Default)]
struct State {
    heads: HashMap<LockName, Head>,
    /// Names on which each transaction has a recorded grant.
    txn_locks: HashMap<TxnId, HashSet<LockName>>,
}

/// The lock manager. Thread-safe; one per database.
pub struct LockManager {
    state: Mutex<State>,
    stats: StatsHandle,
    obs: ObsHandle,
}

/// Lock-table guard that reports its acquisition/release to the lockdep
/// graph (class [`lockdep::Class::LockTable`]).
struct StateGuard<'a>(parking_lot::MutexGuard<'a, State>);

impl std::ops::Deref for StateGuard<'_> {
    type Target = State;

    fn deref(&self) -> &State {
        &self.0
    }
}

impl std::ops::DerefMut for StateGuard<'_> {
    fn deref_mut(&mut self) -> &mut State {
        &mut self.0
    }
}

impl Drop for StateGuard<'_> {
    fn drop(&mut self) {
        lockdep::released(lockdep::Class::LockTable);
    }
}

/// Stable tag for a lock name in trace events (names don't fit in a u64).
fn name_tag(name: &LockName) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut h);
    h.finish()
}

fn mode_tag(mode: LockMode) -> ModeTag {
    match mode {
        LockMode::S | LockMode::IS => ModeTag::S,
        LockMode::X | LockMode::IX | LockMode::SIX => ModeTag::X,
    }
}

impl LockManager {
    pub fn new(stats: StatsHandle) -> LockManager {
        LockManager::new_with_obs(stats, Obs::disabled())
    }

    pub fn new_with_obs(stats: StatsHandle, obs: ObsHandle) -> LockManager {
        LockManager {
            state: Mutex::new(State::default()),
            stats,
            obs,
        }
    }

    fn lock_state(&self, site: &'static str) -> StateGuard<'_> {
        lockdep::acquired(lockdep::Class::LockTable, site, true);
        StateGuard(self.state.lock())
    }

    /// Request `name` in `mode` for `duration` on behalf of `txn`.
    ///
    /// `conditional` requests never wait: they return
    /// [`Error::WouldBlock`] if not immediately grantable. Unconditional
    /// requests wait (FIFO) and may fail with [`Error::Deadlock`].
    pub fn request(
        &self,
        txn: TxnId,
        name: LockName,
        mode: LockMode,
        duration: LockDuration,
        conditional: bool,
    ) -> Result<()> {
        let cell;
        {
            let mut st = self.lock_state("lock::manager::request");
            let head = st.heads.entry(name.clone()).or_default();

            if let Some(gi) = head.find_granted(txn) {
                let held = head.granted[gi].mode;
                let target = held.sup(mode);
                if target == held {
                    // Already covered: just strengthen the duration.
                    if duration > head.granted[gi].duration {
                        head.granted[gi].duration = duration;
                    }
                    self.note_grant(txn, &name, mode, duration);
                    return Ok(());
                }
                // Conversion.
                if head.compatible_with_others(txn, target) {
                    head.granted[gi].mode = target;
                    if duration > head.granted[gi].duration {
                        head.granted[gi].duration = duration;
                    }
                    self.note_grant(txn, &name, mode, duration);
                    return Ok(());
                }
                if conditional {
                    self.stats.lock_conditional_denials.bump();
                    self.obs
                        .event(EventKind::LockDeny, mode_tag(mode), txn.0, 0, name_tag(&name));
                    return Err(Error::WouldBlock);
                }
                cell = self.enqueue(&mut st, txn, name.clone(), mode, duration, true)?;
            } else {
                let grantable = head.queue.is_empty() && head.compatible_with_others(txn, mode);
                if grantable {
                    self.grant_now(&mut st, txn, &name, mode, duration);
                    self.note_grant(txn, &name, mode, duration);
                    return Ok(());
                }
                if conditional {
                    self.stats.lock_conditional_denials.bump();
                    self.obs
                        .event(EventKind::LockDeny, mode_tag(mode), txn.0, 0, name_tag(&name));
                    return Err(Error::WouldBlock);
                }
                cell = self.enqueue(&mut st, txn, name.clone(), mode, duration, false)?;
            }
        }
        // Wait outside the table mutex. Blocking here while holding a page
        // latch would violate the §2.2 protocol — the monitor checks, and
        // lockdep records a latch-class → LockWait edge that arieslint
        // rejects.
        self.obs.monitor.on_unconditional_lock_wait();
        lockdep::acquired(lockdep::Class::LockWait, "lock::manager::wait", true);
        self.obs
            .event(EventKind::LockWait, mode_tag(mode), txn.0, 0, name_tag(&name));
        let wait_timer = self.obs.timer();
        let wait_span = self.obs.span(SpanKind::LockWait, txn.0, 0);
        self.stats.lock_waits.bump();
        let mut s = cell.state.lock();
        while *s == WaitOutcome::Waiting {
            if cell
                .cv
                .wait_for(&mut s, WAIT_WEDGE_TIMEOUT)
                .timed_out()
            {
                drop(s);
                lockdep::released(lockdep::Class::LockWait);
                return Err(Error::Internal(format!(
                    "lock wait wedged: {txn} waiting for {name:?} in {mode:?}"
                )));
            }
        }
        drop(s);
        drop(wait_span);
        lockdep::released(lockdep::Class::LockWait);
        self.obs.hist.lock_wait.record_since(wait_timer);
        self.note_grant(txn, &name, mode, duration);
        Ok(())
    }

    /// Record the grant (mode/duration/kind) in the stats counters and
    /// the trace ring.
    fn note_grant(&self, txn: TxnId, name: &LockName, mode: LockMode, duration: LockDuration) {
        self.obs
            .event(EventKind::LockGrant, mode_tag(mode), txn.0, 0, name_tag(name));
        self.stats.locks_acquired.bump();
        match duration {
            LockDuration::Instant => self.stats.locks_instant.bump(),
            LockDuration::Commit => self.stats.locks_commit.bump(),
            LockDuration::Manual => {}
        }
        match name {
            LockName::Record(_) | LockName::Page(_) => self.stats.locks_record.bump(),
            LockName::KeyValue(..) => self.stats.locks_keyvalue.bump(),
            LockName::Eof(_) => self.stats.locks_eof.bump(),
            LockName::Table(_) => {}
        }
    }

    fn grant_now(
        &self,
        st: &mut State,
        txn: TxnId,
        name: &LockName,
        mode: LockMode,
        duration: LockDuration,
    ) {
        if duration == LockDuration::Instant {
            // Never recorded: the lock evaporates on grant.
            return;
        }
        let head = st.heads.get_mut(name).expect("head exists");
        head.granted.push(Granted {
            txn,
            mode,
            duration,
        });
        st.txn_locks.entry(txn).or_default().insert(name.clone());
    }

    /// Queue a waiter; returns its wait cell, or `Error::Deadlock` if adding
    /// the edge would close a waits-for cycle through `txn`.
    fn enqueue(
        &self,
        st: &mut State,
        txn: TxnId,
        name: LockName,
        mode: LockMode,
        duration: LockDuration,
        convert: bool,
    ) -> Result<Arc<WaitCell>> {
        let cell = Arc::new(WaitCell {
            state: Mutex::new(WaitOutcome::Waiting),
            cv: Condvar::new(),
        });
        let waiter = Waiter {
            txn,
            mode,
            duration,
            convert,
            cell: cell.clone(),
        };
        {
            let head = st.heads.get_mut(&name).expect("head exists");
            if convert {
                // Conversions go ahead of new requests but behind existing
                // conversions (FIFO among converters).
                let pos = head.queue.iter().take_while(|w| w.convert).count();
                head.queue.insert(pos, waiter);
            } else {
                head.queue.push_back(waiter);
            }
        }
        if self.would_deadlock(st, txn) {
            // Remove the waiter we just added and fail the request.
            let head = st.heads.get_mut(&name).expect("head exists");
            let pos = head
                .queue
                .iter()
                .position(|w| w.txn == txn && Arc::ptr_eq(&w.cell, &cell))
                .expect("waiter we just queued");
            head.queue.remove(pos);
            self.stats.deadlocks.bump();
            return Err(Error::Deadlock { txn });
        }
        Ok(cell)
    }

    /// Build the waits-for graph and test whether `start` is on a cycle.
    ///
    /// Edges: each waiter waits for (a) every *other* holder whose granted
    /// mode is incompatible with the waiter's target mode, and (b) every
    /// earlier waiter in the same queue whose mode is incompatible (strict
    /// FIFO means only incompatible predecessors can stall it indefinitely;
    /// compatible predecessors resolve transitively through their own edges).
    fn would_deadlock(&self, st: &State, start: TxnId) -> bool {
        let mut edges: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
        for head in st.heads.values() {
            for (i, w) in head.queue.iter().enumerate() {
                let target = if w.convert {
                    head.granted
                        .iter()
                        .find(|g| g.txn == w.txn)
                        .map(|g| g.mode.sup(w.mode))
                        .unwrap_or(w.mode)
                } else {
                    w.mode
                };
                let out = edges.entry(w.txn).or_default();
                for g in &head.granted {
                    if g.txn != w.txn && !target.compatible_with(g.mode) {
                        out.push(g.txn);
                    }
                }
                for v in head.queue.iter().take(i) {
                    if v.txn != w.txn && !target.compatible_with(v.mode) {
                        out.push(v.txn);
                    }
                }
            }
        }
        // DFS from `start` looking for a path back to `start`.
        let mut stack: Vec<TxnId> = edges.get(&start).cloned().unwrap_or_default();
        let mut seen: HashSet<TxnId> = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == start {
                return true;
            }
            if seen.insert(t) {
                if let Some(next) = edges.get(&t) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }

    /// Re-examine a head after its granted set changed, waking every waiter
    /// that can now be granted.
    fn grant_waiters(&self, st: &mut State, name: &LockName) {
        let mut to_wake: Vec<Arc<WaitCell>> = Vec::new();
        {
            let Some(head) = st.heads.get_mut(name) else {
                return;
            };
            let mut blocked_regular = false;
            let mut i = 0;
            while i < head.queue.len() {
                let w = &head.queue[i];
                let (grantable, target) = if w.convert {
                    match head.granted.iter().position(|g| g.txn == w.txn) {
                        Some(gi) => {
                            let target = head.granted[gi].mode.sup(w.mode);
                            (head.compatible_with_others(w.txn, target), target)
                        }
                        // Holder vanished (rollback released it): treat as new.
                        None => (
                            !blocked_regular && head.compatible_with_others(w.txn, w.mode),
                            w.mode,
                        ),
                    }
                } else if blocked_regular {
                    (false, w.mode)
                } else {
                    (head.compatible_with_others(w.txn, w.mode), w.mode)
                };

                if grantable {
                    let w = head.queue.remove(i).expect("index in range");
                    if w.duration != LockDuration::Instant {
                        match head.granted.iter_mut().find(|g| g.txn == w.txn) {
                            Some(g) => {
                                g.mode = target;
                                if w.duration > g.duration {
                                    g.duration = w.duration;
                                }
                            }
                            None => {
                                head.granted.push(Granted {
                                    txn: w.txn,
                                    mode: target,
                                    duration: w.duration,
                                });
                                st.txn_locks
                                    .entry(w.txn)
                                    .or_default()
                                    .insert(name.clone());
                            }
                        }
                    }
                    to_wake.push(w.cell);
                    // Do not advance i: queue shifted left.
                } else {
                    if !w.convert {
                        blocked_regular = true;
                    }
                    i += 1;
                }
            }
            if head.granted.is_empty() && head.queue.is_empty() {
                st.heads.remove(name);
            }
        }
        for cell in to_wake {
            *cell.state.lock() = WaitOutcome::Granted;
            cell.cv.notify_all();
        }
    }

    /// Release one manual lock.
    pub fn release(&self, txn: TxnId, name: &LockName) {
        let mut st = self.lock_state("lock::manager::release");
        if let Some(head) = st.heads.get_mut(name) {
            if let Some(gi) = head.find_granted(txn) {
                head.granted.remove(gi);
                if let Some(set) = st.txn_locks.get_mut(&txn) {
                    set.remove(name);
                }
                self.grant_waiters(&mut st, name);
            }
        }
    }

    /// Release every lock held by `txn` (commit or rollback completion).
    pub fn release_all(&self, txn: TxnId) {
        let mut st = self.lock_state("lock::manager::release_all");
        let names: Vec<LockName> = st
            .txn_locks
            .remove(&txn)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        for name in names {
            if let Some(head) = st.heads.get_mut(&name) {
                if let Some(gi) = head.find_granted(txn) {
                    head.granted.remove(gi);
                }
                self.grant_waiters(&mut st, &name);
            }
        }
    }

    /// Mode in which `txn` currently holds `name`, if any. For assertions.
    pub fn holds(&self, txn: TxnId, name: &LockName) -> Option<LockMode> {
        let st = self.lock_state("lock::manager::holds");
        st.heads
            .get(name)?
            .granted
            .iter()
            .find(|g| g.txn == txn)
            .map(|g| g.mode)
    }

    /// Duration recorded for `txn`'s grant on `name`, if any. For assertions.
    pub fn holds_duration(&self, txn: TxnId, name: &LockName) -> Option<LockDuration> {
        let st = self.lock_state("lock::manager::holds_duration");
        st.heads
            .get(name)?
            .granted
            .iter()
            .find(|g| g.txn == txn)
            .map(|g| g.duration)
    }

    /// Number of recorded grants held by `txn`. For assertions.
    pub fn held_count(&self, txn: TxnId) -> usize {
        let st = self.lock_state("lock::manager::held_count");
        st.txn_locks.get(&txn).map_or(0, |s| s.len())
    }

    /// True if any transaction is queued anywhere. For assertions.
    pub fn has_waiters(&self) -> bool {
        let st = self.lock_state("lock::manager::has_waiters");
        st.heads.values().any(|h| !h.queue.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariesim_common::stats::new_stats;
    use ariesim_common::{IndexId, PageId, Rid};
    use std::sync::atomic::{AtomicBool, Ordering};

    fn lm() -> LockManager {
        LockManager::new(new_stats())
    }

    fn rec(n: u16) -> LockName {
        LockName::Record(Rid::new(PageId(1), n))
    }

    use LockDuration::*;
    use LockMode::*;

    #[test]
    fn grant_and_reentrant_grant() {
        let m = lm();
        m.request(TxnId(1), rec(0), S, Commit, false).unwrap();
        m.request(TxnId(1), rec(0), S, Commit, false).unwrap();
        assert_eq!(m.holds(TxnId(1), &rec(0)), Some(S));
        assert_eq!(m.held_count(TxnId(1)), 1);
    }

    #[test]
    fn shared_locks_coexist() {
        let m = lm();
        m.request(TxnId(1), rec(0), S, Commit, false).unwrap();
        m.request(TxnId(2), rec(0), S, Commit, false).unwrap();
        assert_eq!(m.holds(TxnId(1), &rec(0)), Some(S));
        assert_eq!(m.holds(TxnId(2), &rec(0)), Some(S));
    }

    #[test]
    fn conditional_conflict_returns_wouldblock() {
        let m = lm();
        m.request(TxnId(1), rec(0), X, Commit, false).unwrap();
        let e = m.request(TxnId(2), rec(0), S, Commit, true).unwrap_err();
        assert!(matches!(e, Error::WouldBlock));
        assert!(!m.has_waiters(), "conditional request must not queue");
    }

    #[test]
    fn self_conversion_upgrades_in_place() {
        let m = lm();
        m.request(TxnId(1), rec(0), S, Commit, false).unwrap();
        m.request(TxnId(1), rec(0), X, Commit, false).unwrap();
        assert_eq!(m.holds(TxnId(1), &rec(0)), Some(X));
        // IX + S = SIX
        m.request(TxnId(1), rec(1), IX, Commit, false).unwrap();
        m.request(TxnId(1), rec(1), S, Commit, false).unwrap();
        assert_eq!(m.holds(TxnId(1), &rec(1)), Some(SIX));
    }

    #[test]
    fn instant_lock_leaves_no_trace() {
        let m = lm();
        m.request(TxnId(1), rec(0), X, Instant, false).unwrap();
        assert_eq!(m.holds(TxnId(1), &rec(0)), None);
        // Another txn can take it right away.
        m.request(TxnId(2), rec(0), X, Commit, true).unwrap();
    }

    #[test]
    fn instant_conflicts_like_any_lock() {
        let m = lm();
        m.request(TxnId(1), rec(0), X, Commit, false).unwrap();
        let e = m
            .request(TxnId(2), rec(0), X, Instant, true)
            .unwrap_err();
        assert!(matches!(e, Error::WouldBlock));
    }

    #[test]
    fn release_wakes_waiter() {
        let m = Arc::new(lm());
        m.request(TxnId(1), rec(0), X, Manual, false).unwrap();
        let granted = Arc::new(AtomicBool::new(false));
        let h = {
            let m = m.clone();
            let granted = granted.clone();
            std::thread::spawn(move || {
                m.request(TxnId(2), rec(0), X, Commit, false).unwrap();
                granted.store(true, Ordering::SeqCst);
            })
        };
        // Give the waiter time to queue.
        while !m.has_waiters() {
            std::thread::yield_now();
        }
        assert!(!granted.load(Ordering::SeqCst));
        m.release(TxnId(1), &rec(0));
        h.join().unwrap();
        assert!(granted.load(Ordering::SeqCst));
        assert_eq!(m.holds(TxnId(2), &rec(0)), Some(X));
    }

    #[test]
    fn release_all_releases_everything() {
        let m = lm();
        m.request(TxnId(1), rec(0), X, Commit, false).unwrap();
        m.request(TxnId(1), rec(1), S, Commit, false).unwrap();
        m.request(TxnId(1), LockName::Eof(IndexId(1)), S, Commit, false)
            .unwrap();
        assert_eq!(m.held_count(TxnId(1)), 3);
        m.release_all(TxnId(1));
        assert_eq!(m.held_count(TxnId(1)), 0);
        m.request(TxnId(2), rec(0), X, Commit, true).unwrap();
    }

    #[test]
    fn two_txn_deadlock_detected() {
        let m = Arc::new(lm());
        m.request(TxnId(1), rec(0), X, Commit, false).unwrap();
        m.request(TxnId(2), rec(1), X, Commit, false).unwrap();
        // T2 waits for rec(0).
        let m2 = m.clone();
        let h = std::thread::spawn(move || m2.request(TxnId(2), rec(0), X, Commit, false));
        while !m.has_waiters() {
            std::thread::yield_now();
        }
        // T1 requesting rec(1) closes the cycle: T1 must be the victim.
        let e = m.request(TxnId(1), rec(1), X, Commit, false).unwrap_err();
        assert!(matches!(e, Error::Deadlock { txn: TxnId(1) }), "{e:?}");
        // Unblock T2.
        m.release_all(TxnId(1));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn conversion_deadlock_detected() {
        // Both hold S, both try to convert to X: classic conversion deadlock.
        let m = Arc::new(lm());
        m.request(TxnId(1), rec(0), S, Commit, false).unwrap();
        m.request(TxnId(2), rec(0), S, Commit, false).unwrap();
        let m2 = m.clone();
        let h = std::thread::spawn(move || m2.request(TxnId(2), rec(0), X, Commit, false));
        while !m.has_waiters() {
            std::thread::yield_now();
        }
        let e = m.request(TxnId(1), rec(0), X, Commit, false).unwrap_err();
        assert!(matches!(e, Error::Deadlock { txn: TxnId(1) }));
        m.release_all(TxnId(1));
        h.join().unwrap().unwrap();
        assert_eq!(m.holds(TxnId(2), &rec(0)), Some(X));
    }

    #[test]
    fn fifo_prevents_starvation_writer_between_readers() {
        let m = Arc::new(lm());
        m.request(TxnId(1), rec(0), S, Manual, false).unwrap();
        // Writer queues.
        let mw = m.clone();
        let writer = std::thread::spawn(move || {
            mw.request(TxnId(2), rec(0), X, Manual, false).unwrap();
            // Hold briefly, then release.
            mw.release(TxnId(2), &rec(0));
        });
        while !m.has_waiters() {
            std::thread::yield_now();
        }
        // A late reader must queue behind the writer, not jump it.
        let mr = m.clone();
        let reader = std::thread::spawn(move || {
            mr.request(TxnId(3), rec(0), S, Manual, false).unwrap();
            mr.release(TxnId(3), &rec(0));
        });
        // Give the reader time to either (incorrectly) grab the lock or queue.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            m.holds(TxnId(3), &rec(0)),
            None,
            "late reader must wait behind queued writer"
        );
        m.release(TxnId(1), &rec(0));
        writer.join().unwrap();
        reader.join().unwrap();
    }

    #[test]
    fn duration_strengthens_but_never_weakens() {
        let m = lm();
        m.request(TxnId(1), rec(0), S, Manual, false).unwrap();
        m.request(TxnId(1), rec(0), S, Commit, false).unwrap();
        assert_eq!(m.holds_duration(TxnId(1), &rec(0)), Some(Commit));
        // Re-request with weaker duration: stays commit.
        m.request(TxnId(1), rec(0), S, Instant, false).unwrap();
        assert_eq!(m.holds_duration(TxnId(1), &rec(0)), Some(Commit));
    }

    #[test]
    fn stress_many_threads_no_lost_wakeups() {
        let m = Arc::new(lm());
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let m = m.clone();
                let counter = counter.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        let txn = TxnId(1 + t * 1000 + i);
                        loop {
                            match m.request(txn, rec(0), X, Manual, false) {
                                Ok(()) => break,
                                Err(Error::Deadlock { .. }) => continue,
                                Err(e) => panic!("{e}"),
                            }
                        }
                        counter.fetch_add(1, Ordering::SeqCst);
                        m.release(txn, &rec(0));
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 400);
        assert!(!m.has_waiters());
    }

    #[test]
    fn stats_classify_names_and_durations() {
        let stats = new_stats();
        let m = LockManager::new(stats.clone());
        m.request(TxnId(1), rec(0), X, Commit, false).unwrap();
        m.request(TxnId(1), LockName::key_value(IndexId(1), b"k".to_vec()), S, Commit, false)
            .unwrap();
        m.request(TxnId(1), LockName::Eof(IndexId(1)), S, Instant, false)
            .unwrap();
        let s = stats.snapshot();
        assert_eq!(s.locks_acquired, 3);
        assert_eq!(s.locks_record, 1);
        assert_eq!(s.locks_keyvalue, 1);
        assert_eq!(s.locks_eof, 1);
        assert_eq!(s.locks_instant, 1);
        assert_eq!(s.locks_commit, 2);
    }
}
