//! Lock modes, the compatibility matrix, the conversion lattice, and
//! durations — per \[Gray78\], as the paper assumes (§1.2).

/// Lock mode. `IS`/`IX`/`SIX` are intention modes used on coarser granules
/// (table/file) when record- or key-level locking is in effect.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum LockMode {
    IS,
    IX,
    S,
    SIX,
    X,
}

impl LockMode {
    /// Gray's compatibility matrix: may a lock in `self` be granted while
    /// another transaction holds `held`?
    pub fn compatible_with(self, held: LockMode) -> bool {
        use LockMode::*;
        match (self, held) {
            (IS, X) => false,
            (IS, _) => true,
            (IX, IS) | (IX, IX) => true,
            (IX, _) => false,
            (S, IS) | (S, S) => true,
            (S, _) => false,
            (SIX, IS) => true,
            (SIX, _) => false,
            (X, _) => false,
        }
    }

    /// Least upper bound in the conversion lattice: the mode a holder of
    /// `self` must convert to in order to also cover `other`.
    pub fn sup(self, other: LockMode) -> LockMode {
        use LockMode::*;
        match (self, other) {
            (X, _) | (_, X) => X,
            (IS, m) | (m, IS) => m,
            (IX, IX) => IX,
            (S, S) => S,
            (IX, S) | (S, IX) | (SIX, _) | (_, SIX) => SIX,
        }
    }

    /// Does holding `self` make a request for `want` a no-op?
    /// True iff `sup(self, want) == self`.
    pub fn covers(self, want: LockMode) -> bool {
        self.sup(want) == self
    }
}

/// How long a granted lock is retained (paper §1.2, Figure 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
#[repr(u8)]
pub enum LockDuration {
    /// Released as soon as it is granted: the requester only learns that the
    /// lock *was grantable at that moment*. ARIES/IM's insert uses an instant
    /// X next-key lock (Figure 2) because the inserted key itself becomes the
    /// tripping point afterwards (§2.6).
    Instant,
    /// Held until explicitly released (or transaction end).
    Manual,
    /// Held until the transaction commits or finishes rollback. Deletes hold
    /// their next-key X lock for commit duration (Figure 2, §2.6).
    Commit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    const ALL: [LockMode; 5] = [IS, IX, S, SIX, X];

    #[test]
    fn compatibility_matrix_matches_gray() {
        // (requested, held) -> compatible
        let expect = [
            // IS   IX     S     SIX    X       <- held
            (IS, [true, true, true, true, false]),
            (IX, [true, true, false, false, false]),
            (S, [true, false, true, false, false]),
            (SIX, [true, false, false, false, false]),
            (X, [false, false, false, false, false]),
        ];
        for (req, row) in expect {
            for (held, want) in ALL.iter().zip(row) {
                assert_eq!(
                    req.compatible_with(*held),
                    want,
                    "compat({req:?}, {held:?})"
                );
            }
        }
    }

    #[test]
    fn compatibility_is_symmetric() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.compatible_with(b), b.compatible_with(a), "{a:?} {b:?}");
            }
        }
    }

    #[test]
    fn sup_is_commutative_idempotent_and_monotone() {
        for a in ALL {
            assert_eq!(a.sup(a), a);
            for b in ALL {
                assert_eq!(a.sup(b), b.sup(a));
                let s = a.sup(b);
                // sup covers both inputs
                assert!(s.covers(a) && s.covers(b), "sup({a:?},{b:?})={s:?}");
            }
        }
    }

    #[test]
    fn sup_specific_values() {
        assert_eq!(IX.sup(S), SIX);
        assert_eq!(S.sup(IX), SIX);
        assert_eq!(IS.sup(X), X);
        assert_eq!(SIX.sup(IX), SIX);
        assert_eq!(S.sup(X), X);
    }

    #[test]
    fn covers_examples() {
        assert!(X.covers(S));
        assert!(X.covers(IS));
        assert!(SIX.covers(S) && SIX.covers(IX));
        assert!(!S.covers(X));
        assert!(!IX.covers(S));
    }

    #[test]
    fn duration_ordering_instant_weakest() {
        assert!(LockDuration::Instant < LockDuration::Manual);
        assert!(LockDuration::Manual < LockDuration::Commit);
    }
}
