//! Lock manager.
//!
//! Implements the locking substrate ARIES/IM assumes (paper §1.2, §2.1):
//!
//! * modes **S, X, IS, IX, SIX** with the standard Gray compatibility matrix
//!   and conversion lattice ([`mode`]);
//! * **durations**: *instant* (the lock is released the moment it is granted
//!   — used for next-key locks during inserts), *manual*, and *commit*
//!   (held until the transaction ends) ([`LockDuration`]);
//! * **conditional requests**: fail immediately with
//!   [`ariesim_common::Error::WouldBlock`] instead of queueing — the paper's
//!   §2.2 rule is that no lock is ever waited for while page latches are
//!   held, so the index manager first asks conditionally, and only waits
//!   unconditionally after releasing its latches;
//! * **deadlock detection** on the waits-for graph, run at wait time; the
//!   victim is the requester that closed the cycle ([`manager`]).
//!
//! Lock *names* ([`LockName`]) encode what ARIES/IM locks: record RIDs for
//! data-only locking, (index, key-value) pairs for index-specific locking and
//! the ARIES/KVL baseline, and the per-index EOF name used when a fetch runs
//! off the right edge of the index (paper §2.2).

pub mod manager;
pub mod mode;
pub mod name;

pub use manager::LockManager;
pub use mode::{LockDuration, LockMode};
pub use name::LockName;
