//! Lock names: what can be locked.
//!
//! ARIES/IM's headline idea (§2.1) is *data-only locking*: "to lock a key,
//! ARIES/IM locks the record whose record ID is present in the key". So the
//! index manager and the record manager lock the **same** [`LockName::Record`]
//! names, and a single lock covers both the data and every index entry
//! derived from it. The alternatives the paper compares against —
//! index-specific locking and ARIES/KVL — lock [`LockName::KeyValue`] names.
//! [`LockName::Eof`] is the "special lock name unique to this index" used
//! when a fetch finds no higher key (§2.2).

use ariesim_common::{IndexId, PageId, Rid, TableId};
use std::fmt;

/// A lockable object's name.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockName {
    /// A table/file: intention locks for multi-granularity locking.
    Table(TableId),
    /// A data page: used when the locking granularity of a table is `page`
    /// rather than `record` ("or the data page ID which is part of the record
    /// ID, if the locking granularity is a page", §2.1).
    Page(PageId),
    /// A record in a data page: the name data-only locking uses for keys.
    Record(Rid),
    /// A key *value* in an index: index-specific locking and ARIES/KVL.
    KeyValue(IndexId, Vec<u8>),
    /// The end-of-file name of an index, locked when a search runs off the
    /// right edge (§2.2).
    Eof(IndexId),
}

impl LockName {
    /// The record name for a key, honouring the table's locking granularity:
    /// record-granularity locks the RID, page-granularity locks the RID's
    /// data page (§2.1).
    pub fn for_data(rid: Rid, page_granularity: bool) -> LockName {
        if page_granularity {
            LockName::Page(rid.page)
        } else {
            LockName::Record(rid)
        }
    }

    pub fn key_value(index: IndexId, value: impl Into<Vec<u8>>) -> LockName {
        LockName::KeyValue(index, value.into())
    }
}

impl fmt::Debug for LockName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockName::Table(t) => write!(f, "L:{t}"),
            LockName::Page(p) => write!(f, "L:{p}"),
            LockName::Record(r) => write!(f, "L:{r}"),
            LockName::KeyValue(i, v) => {
                write!(f, "L:{i}:{}", String::from_utf8_lossy(v))
            }
            LockName::Eof(i) => write!(f, "L:{i}:EOF"),
        }
    }
}

impl fmt::Display for LockName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_selects_name() {
        let rid = Rid::new(PageId(3), 4);
        assert_eq!(LockName::for_data(rid, false), LockName::Record(rid));
        assert_eq!(LockName::for_data(rid, true), LockName::Page(PageId(3)));
    }

    #[test]
    fn distinct_names_are_unequal() {
        let rid = Rid::new(PageId(3), 4);
        let names = [
            LockName::Table(TableId(1)),
            LockName::Page(PageId(3)),
            LockName::Record(rid),
            LockName::key_value(IndexId(1), b"k".to_vec()),
            LockName::key_value(IndexId(2), b"k".to_vec()),
            LockName::key_value(IndexId(1), b"k2".to_vec()),
            LockName::Eof(IndexId(1)),
            LockName::Eof(IndexId(2)),
        ];
        for (i, a) in names.iter().enumerate() {
            for (j, b) in names.iter().enumerate() {
                assert_eq!(a == b, i == j, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn hashable_in_map() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(LockName::Eof(IndexId(9)), 1);
        m.insert(LockName::key_value(IndexId(9), b"a".to_vec()), 2);
        assert_eq!(m[&LockName::Eof(IndexId(9))], 1);
    }
}
