//! Additional lock-manager protocol tests: intention modes on coarse
//! granules, conversion queue priority, instant-duration waiters in FIFO
//! order, and multi-granularity compatibility — the [Gray78] machinery §1.2
//! assumes.

use ariesim_common::stats::new_stats;
use ariesim_common::{Error, PageId, Rid, TableId, TxnId};
use ariesim_lock::{LockDuration, LockManager, LockMode, LockName};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use LockDuration::*;
use LockMode::*;

fn lm() -> Arc<LockManager> {
    Arc::new(LockManager::new(new_stats()))
}

fn table() -> LockName {
    LockName::Table(TableId(1))
}

fn rec(n: u16) -> LockName {
    LockName::Record(Rid::new(PageId(1), n))
}

#[test]
fn intention_modes_coexist_on_the_table() {
    let m = lm();
    // Record-locking transactions take IS/IX on the table.
    m.request(TxnId(1), table(), IX, Commit, false).unwrap();
    m.request(TxnId(2), table(), IX, Commit, false).unwrap();
    m.request(TxnId(3), table(), IS, Commit, false).unwrap();
    // A table-scan reader's S conflicts with the writers' IX.
    assert!(matches!(
        m.request(TxnId(4), table(), S, Commit, true),
        Err(Error::WouldBlock)
    ));
    m.release_all(TxnId(1));
    m.release_all(TxnId(2));
    // With only IS holders left, S is grantable.
    m.request(TxnId(4), table(), S, Commit, true).unwrap();
}

#[test]
fn six_blocks_other_readers_but_not_is() {
    let m = lm();
    m.request(TxnId(1), table(), SIX, Commit, false).unwrap();
    m.request(TxnId(2), table(), IS, Commit, true).unwrap();
    assert!(matches!(
        m.request(TxnId(3), table(), S, Commit, true),
        Err(Error::WouldBlock)
    ));
    assert!(matches!(
        m.request(TxnId(4), table(), IX, Commit, true),
        Err(Error::WouldBlock)
    ));
}

#[test]
fn s_plus_ix_converts_to_six() {
    let m = lm();
    m.request(TxnId(1), table(), S, Commit, false).unwrap();
    m.request(TxnId(1), table(), IX, Commit, false).unwrap();
    assert_eq!(m.holds(TxnId(1), &table()), Some(SIX));
}

#[test]
fn conversion_jumps_the_queue_ahead_of_new_requests() {
    let m = lm();
    // T1 and T2 both hold S; T3 queues for X (new request).
    m.request(TxnId(1), rec(0), S, Manual, false).unwrap();
    m.request(TxnId(2), rec(0), S, Manual, false).unwrap();
    let m3 = m.clone();
    let t3 = std::thread::spawn(move || m3.request(TxnId(3), rec(0), X, Manual, false));
    while !m.has_waiters() {
        std::thread::yield_now();
    }
    // T1 requests conversion S→X: goes AHEAD of T3 in the queue. It can't be
    // granted while T2 holds S.
    let granted_first = Arc::new(AtomicU64::new(0));
    let m1 = m.clone();
    let g1 = granted_first.clone();
    let t1 = std::thread::spawn(move || {
        m1.request(TxnId(1), rec(0), X, Manual, false).unwrap();
        g1.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst).ok();
        m1.release(TxnId(1), &rec(0));
    });
    std::thread::sleep(Duration::from_millis(50));
    // Release T2's S: the converter must win over the queued X.
    m.release(TxnId(2), &rec(0));
    t1.join().unwrap();
    assert_eq!(granted_first.load(Ordering::SeqCst), 1);
    t3.join().unwrap().unwrap();
    m.release(TxnId(3), &rec(0));
}

#[test]
fn instant_waiters_unblock_in_order_and_leave_no_residue() {
    let m = lm();
    m.request(TxnId(1), rec(0), X, Manual, false).unwrap();
    let done = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 2..6u64 {
        let m = m.clone();
        let done = done.clone();
        handles.push(std::thread::spawn(move || {
            m.request(TxnId(t), rec(0), X, Instant, false).unwrap();
            done.fetch_add(1, Ordering::SeqCst);
        }));
    }
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(done.load(Ordering::SeqCst), 0);
    m.release(TxnId(1), &rec(0));
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(done.load(Ordering::SeqCst), 4);
    // All instant grants evaporated: the name is free.
    m.request(TxnId(9), rec(0), X, Commit, true).unwrap();
}

#[test]
fn three_party_deadlock_cycle_detected() {
    let m = lm();
    m.request(TxnId(1), rec(0), X, Commit, false).unwrap();
    m.request(TxnId(2), rec(1), X, Commit, false).unwrap();
    m.request(TxnId(3), rec(2), X, Commit, false).unwrap();
    // 2→0 and 3→1 wait; 1→2 closes a 3-cycle.
    let m2 = m.clone();
    let h2 = std::thread::spawn(move || m2.request(TxnId(2), rec(0), X, Commit, false));
    let m3 = m.clone();
    let h3 = std::thread::spawn(move || m3.request(TxnId(3), rec(1), X, Commit, false));
    for _ in 0..1000 {
        if m.has_waiters() {
            break;
        }
        std::thread::yield_now();
    }
    std::thread::sleep(Duration::from_millis(30));
    let e = m.request(TxnId(1), rec(2), X, Commit, false).unwrap_err();
    assert!(matches!(e, Error::Deadlock { txn: TxnId(1) }));
    m.release_all(TxnId(1));
    h2.join().unwrap().unwrap();
    m.release_all(TxnId(2));
    h3.join().unwrap().unwrap();
    m.release_all(TxnId(3));
}

#[test]
fn key_value_names_are_per_index() {
    let m = lm();
    let a = LockName::KeyValue(ariesim_common::IndexId(1), b"k".to_vec());
    let b = LockName::KeyValue(ariesim_common::IndexId(2), b"k".to_vec());
    m.request(TxnId(1), a, X, Commit, false).unwrap();
    // Same value in a different index: no conflict.
    m.request(TxnId(2), b, X, Commit, true).unwrap();
}

#[test]
fn release_all_under_contention_wakes_everyone_exactly_once() {
    let m = lm();
    for n in 0..6u16 {
        m.request(TxnId(1), rec(n), X, Commit, false).unwrap();
    }
    let woken = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for n in 0..6u16 {
        let m = m.clone();
        let woken = woken.clone();
        handles.push(std::thread::spawn(move || {
            m.request(TxnId(10 + n as u64), rec(n), S, Commit, false)
                .unwrap();
            woken.fetch_add(1, Ordering::SeqCst);
        }));
    }
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(woken.load(Ordering::SeqCst), 0);
    m.release_all(TxnId(1));
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(woken.load(Ordering::SeqCst), 6);
}
