//! Tree traversal — the paper's Figure 4.
//!
//! Latch-coupled descent: the parent's latch is held while the child's is
//! requested, so at most two page latches are ever held and the page being
//! entered can neither be freed nor restructured under the traverser (an SMO
//! needs the X latch of every page it touches, and never holds a lower-level
//! latch while requesting an upper-level one — §4's deadlock-freedom
//! argument).
//!
//! The **ambiguity test**: descending to the *rightmost* child of a nonleaf
//! whose SM_Bit is '1' cannot be trusted — an in-progress split may not yet
//! have posted the separator that would route the key elsewhere. In that
//! case (or when the nonleaf is empty, or a latched page turns out not to be
//! the expected index page at all) the traverser releases everything,
//! acquires the tree latch for **instant** duration in S mode — i.e. waits
//! for the in-flight SMO to complete — and restarts from the root. Restarting
//! from the root is a conservative instance of Figure 4's "unwind recursion
//! as far as necessary" (see DESIGN.md §4); the restarts are counted in
//! `traversal_restarts`.

use crate::node::{node_highest_high_key, node_search};
use crate::BTree;
use ariesim_common::key::SearchKey;
use ariesim_common::page::PageType;
use ariesim_common::stats::Bump;
use ariesim_common::{Error, Lsn, PageBuf, PageId, Result};
use ariesim_obs::{lockdep, EventKind, ModeTag, SpanKind};
use ariesim_storage::{PageReadGuard, PageWriteGuard};

/// S-mode tree-latch guard; reports its release to the lockdep graph.
pub struct TreeSGuard<'a>(#[allow(dead_code)] pub(crate) parking_lot::RwLockReadGuard<'a, ()>);

impl Drop for TreeSGuard<'_> {
    fn drop(&mut self) {
        lockdep::released(lockdep::Class::TreeLatch);
    }
}

/// X-mode tree-latch guard; reports its release to the lockdep graph.
pub struct TreeXGuard<'a>(#[allow(dead_code)] pub(crate) parking_lot::RwLockWriteGuard<'a, ()>);

impl Drop for TreeXGuard<'_> {
    fn drop(&mut self) {
        lockdep::released(lockdep::Class::TreeLatch);
    }
}

/// The latched leaf a traversal ends at: S for fetches, X for modifications
/// (Figure 4's final step).
pub enum LeafGuard {
    S(PageReadGuard),
    X(PageWriteGuard),
}

impl LeafGuard {
    pub fn page(&self) -> &PageBuf {
        match self {
            LeafGuard::S(g) => g,
            LeafGuard::X(g) => g,
        }
    }

    pub fn page_id(&self) -> PageId {
        self.page().page_id()
    }

    pub fn lsn(&self) -> Lsn {
        self.page().page_lsn()
    }

    pub fn as_x(&mut self) -> Result<&mut PageWriteGuard> {
        match self {
            LeafGuard::X(g) => Ok(g),
            LeafGuard::S(_) => Err(Error::Internal(
                "leaf latched S where X is required".into(),
            )),
        }
    }
}

/// Is this page a live page of `tree` at `level`? A mismatch means the
/// traverser raced an SMO (e.g. latched a page just freed by a page
/// deletion) and must restart.
fn valid_page(page: &PageBuf, tree: &BTree, level: u16) -> bool {
    let ty = match page.page_type() {
        Ok(t) => t,
        Err(_) => return false,
    };
    let want = if level == 0 {
        PageType::IndexLeaf
    } else {
        PageType::IndexNonLeaf
    };
    ty == want && page.owner() == tree.index_id.0 && page.level() == level
}

impl BTree {
    // --- tree latch helpers (§2.1) --------------------------------------

    /// Instant-duration S tree latch: wait for any in-progress SMO to finish
    /// (establishes a POSC), then release immediately.
    ///
    /// All S acquisitions of the tree latch use `read_recursive`: a thread
    /// already holding the latch S (a boundary-key delete, Figure 7) may
    /// re-enter the traversal machinery, and a plain `read` would deadlock
    /// against a queued SMO writer. The cost is that a waiting SMO does not
    /// block new S acquirers — acceptable, since S holds are short and rare.
    pub(crate) fn tree_instant_s(&self) {
        self.stats.latches_tree.bump();
        self.stats.latches_tree_instant.bump();
        self.obs
            .event(EventKind::TreeLatchAcquire, ModeTag::Instant, 0, 0, 0);
        lockdep::acquired(lockdep::Class::TreeLatch, "btree::tree_instant_s", true);
        if let Some(g) = self.tree_latch.try_read_recursive() {
            drop(g);
            lockdep::released(lockdep::Class::TreeLatch);
            return;
        }
        self.stats.latch_tree_waits.bump();
        let wait = self.obs.timer();
        let span = self.obs.span(SpanKind::LatchWait, 0, 0);
        drop(self.tree_latch.read_recursive());
        drop(span);
        lockdep::released(lockdep::Class::TreeLatch);
        self.obs.hist.latch_wait_tree.record_since(wait);
    }

    /// Conditional S tree latch (used by boundary-key deletes, Figure 7).
    pub(crate) fn try_tree_s(&self) -> Option<TreeSGuard<'_>> {
        let g = self.tree_latch.try_read_recursive();
        if g.is_some() {
            self.stats.latches_tree.bump();
            lockdep::acquired(lockdep::Class::TreeLatch, "btree::try_tree_s", false);
        }
        g.map(TreeSGuard)
    }

    /// Unconditional S tree latch.
    pub(crate) fn tree_s(&self) -> TreeSGuard<'_> {
        self.stats.latches_tree.bump();
        self.obs
            .event(EventKind::TreeLatchAcquire, ModeTag::S, 0, 0, 0);
        lockdep::acquired(lockdep::Class::TreeLatch, "btree::tree_s", true);
        if let Some(g) = self.tree_latch.try_read_recursive() {
            return TreeSGuard(g);
        }
        self.stats.latch_tree_waits.bump();
        let wait = self.obs.timer();
        let span = self.obs.span(SpanKind::LatchWait, 0, 0);
        let g = self.tree_latch.read_recursive();
        drop(span);
        self.obs.hist.latch_wait_tree.record_since(wait);
        TreeSGuard(g)
    }

    /// X tree latch: serializes SMOs on this index.
    pub(crate) fn tree_x(&self) -> TreeXGuard<'_> {
        self.stats.latches_tree.bump();
        self.obs
            .event(EventKind::TreeLatchAcquire, ModeTag::X, 0, 0, 0);
        lockdep::acquired(lockdep::Class::TreeLatch, "btree::tree_x", true);
        if let Some(g) = self.tree_latch.try_write() {
            return TreeXGuard(g);
        }
        self.stats.latch_tree_waits.bump();
        let wait = self.obs.timer();
        let span = self.obs.span(SpanKind::LatchWait, 0, 0);
        let g = self.tree_latch.write();
        drop(span);
        self.obs.hist.latch_wait_tree.record_since(wait);
        TreeXGuard(g)
    }

    // --- Figure 4 ---------------------------------------------------------

    /// Traverse to the leaf that should hold `search`, latched S
    /// (`for_update == false`) or X (`for_update == true`).
    pub(crate) fn traverse(&self, search: &SearchKey<'_>, for_update: bool) -> Result<LeafGuard> {
        'restart: loop {
            self.stats.tree_traversals.bump();
            // Latch the root; upgrade to X if it is itself the leaf we must
            // modify. (The root's identity is fixed, but its *level* can
            // change under an SMO, hence the re-checks.)
            let root_guard = self.pool.fix_s(self.root)?; // latch-rank: 2
            let mut parent: PageReadGuard = if root_guard.level() == 0 {
                if !for_update {
                    return Ok(LeafGuard::S(root_guard));
                }
                drop(root_guard);
                let gx = self.pool.fix_x(self.root)?; // latch-rank: 2 (fresh)
                if gx.level() == 0 {
                    return Ok(LeafGuard::X(gx));
                }
                gx.downgrade()
            } else {
                root_guard
            };

            // Descend through nonleaf pages with latch coupling.
            loop {
                let level = parent.level();
                debug_assert!(level > 0);
                let n = parent.slot_count();
                let routes_rightmost = if n == 0 {
                    true
                } else {
                    match node_highest_high_key(&parent)? {
                        // Only a rightmost cell: every key routes to it.
                        None => true,
                        Some(hk) => search.cmp_key(&hk) != std::cmp::Ordering::Less,
                    }
                };
                let ambiguous = n == 0 || (routes_rightmost && parent.sm_bit());
                if ambiguous {
                    // Figure 4: unfinished SMO — wait for it via the tree
                    // latch, then go down again. While holding the S tree
                    // latch (no SMO can be in progress) we also reset the
                    // now-stale SM_Bit — the paper's "the SM_Bit can be
                    // reset to '0' once the SMO which caused it to be set
                    // has been completed" — otherwise every later traversal
                    // to a rightmost child would restart forever.
                    let ambiguous_page = parent.page_id();
                    drop(parent);
                    self.stats.traversal_restarts.bump();
                    self.obs.event(
                        EventKind::TraversalRestart,
                        ModeTag::None,
                        0,
                        ambiguous_page.0,
                        0,
                    );
                    {
                        let _t = self.tree_s(); // latch-rank: 1 (fresh)
                        let mut g = self.pool.fix_x(ambiguous_page)?; // latch-rank: 2
                        if g.sm_bit()
                            && g.owner() == self.index_id.0
                            && matches!(g.page_type(), Ok(PageType::IndexNonLeaf))
                        {
                            // Unlogged hint reset (see DESIGN.md §4): redo
                            // determinism is unaffected because no LSN moves.
                            g.set_sm_bit(false);
                            let lsn = g.page_lsn();
                            g.mark_dirty_raw(lsn);
                        }
                    }
                    continue 'restart;
                }
                let (_slot, child_id) = node_search(&parent, search)?;
                let child_level = level - 1;
                if child_level == 0 && for_update {
                    let child = self.pool.fix_x(child_id)?; // latch-rank: 2
                    drop(parent);
                    if !valid_page(&child, self, 0) {
                        drop(child);
                        self.stats.traversal_restarts.bump();
                        self.obs
                            .event(EventKind::TraversalRestart, ModeTag::None, 0, child_id.0, 0);
                        self.tree_instant_s(); // latch-rank: 1 (fresh)
                        continue 'restart;
                    }
                    return Ok(LeafGuard::X(child));
                }
                let child = self.pool.fix_s(child_id)?; // latch-rank: 2
                drop(parent);
                if !valid_page(&child, self, child_level) {
                    drop(child);
                    self.stats.traversal_restarts.bump();
                    self.obs
                        .event(EventKind::TraversalRestart, ModeTag::None, 0, child_id.0, 0);
                    self.tree_instant_s(); // latch-rank: 1 (fresh)
                    continue 'restart;
                }
                if child_level == 0 {
                    return Ok(LeafGuard::S(child));
                }
                parent = child;
            }
        }
    }
}
