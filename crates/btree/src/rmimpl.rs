//! The index resource manager: redo and undo of index log records (§3).
//!
//! **Redo** is always page-oriented: decode the body, apply it to the
//! envelope's page with the same function forward processing used. The
//! recovery driver has already established `page_lsn < rec.lsn`.
//!
//! **Undo** distinguishes:
//!
//! * `InsertKey` / `DeleteKey` — first try **page-oriented** undo: fix the
//!   logged page and check "whether that is the right page to perform the
//!   undo on, given the current state of that page". The paper's four
//!   conditions force a **logical undo** (a retraversal from the root, under
//!   the tree latch) when: (1) a key-delete undo doesn't fit (space was
//!   consumed — a split SMO is needed); (2) the key moved / the page stopped
//!   being a leaf; (3) the key to put back is not *bounded* on the page
//!   (ambiguity); (4) a key-insert undo would empty the page (a page-delete
//!   SMO is needed).
//! * SMO bodies — only ever undone when their SMO never completed (a
//!   finished SMO is fenced off by its dummy CLR), so the stored
//!   before-state is exact: apply the page-oriented inverse and write a
//!   physical [`IndexBody::PageRestore`] CLR.
//!
//! SMOs performed *during* undo (the split in case 1, the page delete in
//! case 4) are logged as **regular records**, the paper's stated exception
//! to CLR-only undo logging, so that a crash mid-way can undo them and
//! restore structural consistency.
//!
//! No locks are acquired anywhere on the undo paths (§4) — rolling-back
//! transactions can never deadlock.

use crate::apply::{apply_body, snapshot_restore_body, undo_body};
use crate::body::IndexBody;
use crate::node::{leaf_contains, leaf_lower_bound};
use crate::BTree;
use ariesim_common::key::SearchKey;
use ariesim_common::page::PageType;
use ariesim_common::slotted::SLOT_LEN;
use ariesim_common::stats::{Bump, StatsHandle};
use ariesim_common::{Error, IndexId, IndexKey, PageBuf, Result};
use ariesim_storage::BufferPool;
use ariesim_wal::{ChainLogger, LogRecord, ResourceManager, RmId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Resource manager for [`RmId::Index`] records, dispatching logical undos
/// to the registered [`BTree`] instances.
pub struct IndexRm {
    pool: Arc<BufferPool>,
    trees: RwLock<HashMap<IndexId, Arc<BTree>>>,
    stats: StatsHandle,
}

impl IndexRm {
    pub fn new(pool: Arc<BufferPool>, stats: StatsHandle) -> Arc<IndexRm> {
        Arc::new(IndexRm {
            pool,
            trees: RwLock::new(HashMap::new()),
            stats,
        })
    }

    /// Register an index so its records can be logically undone.
    pub fn register_tree(&self, tree: Arc<BTree>) {
        self.trees.write().insert(tree.index_id, tree);
    }

    fn tree(&self, index: IndexId) -> Result<Arc<BTree>> {
        self.trees
            .read()
            .get(&index)
            .cloned()
            .ok_or_else(|| Error::Internal(format!("no registered index {index}")))
    }

    /// Is this page currently a live leaf of `tree`?
    fn is_leaf_of(page: &PageBuf, tree: &BTree) -> bool {
        matches!(page.page_type(), Ok(PageType::IndexLeaf))
            && page.owner() == tree.index_id.0
            && page.level() == 0
    }

    /// Undo a key insert: remove the key again (paper Figure 1 scenario when
    /// it goes logical).
    fn undo_insert(
        &self,
        tree: &BTree,
        logger: &mut ChainLogger<'_>,
        rec: &LogRecord,
        key: &IndexKey,
    ) -> Result<()> {
        let clr_body = IndexBody::DeleteKey {
            index: tree.index_id,
            key: key.clone(),
        };
        // Page-oriented attempt.
        {
            let mut g = self.pool.fix_x(rec.page)?; // latch-rank: 2
            if Self::is_leaf_of(&g, tree)
                && leaf_contains(&g, key)?.is_some()
                && g.slot_count() > 1
            {
                apply_body(&mut g, rec.page, &clr_body)?;
                let lsn = logger.clr(RmId::Index, rec.page, rec.prev_lsn, clr_body.encode());
                g.record_update(lsn);
                self.stats.undo_page_oriented.bump();
                return Ok(());
            }
        }
        // Logical undo: retraverse under the tree latch (which also lets us
        // run a page-delete SMO if removing the key empties the page —
        // condition 4).
        self.stats.undo_logical.bump();
        let _tx = tree.tree_x(); // latch-rank: 1 (fresh)
        let search = SearchKey::from_key(key);
        let path = tree.descend_path(&search)?;
        let leaf_id = crate::smo::path_leaf(&path)?;
        let now_empty = {
            let mut g = self.pool.fix_x(leaf_id)?; // latch-rank: 2
            if leaf_contains(&g, key)?.is_none() {
                return Err(Error::CorruptPage {
                    page: leaf_id,
                    reason: format!("logical undo: inserted key {key:?} not found"),
                });
            }
            apply_body(&mut g, leaf_id, &clr_body)?;
            let lsn = logger.clr(RmId::Index, leaf_id, rec.prev_lsn, clr_body.encode());
            g.record_update(lsn);
            g.slot_count() == 0 && leaf_id != tree.root
        };
        if now_empty {
            // Page-delete SMO during undo: regular records + dummy CLR whose
            // undo_next points at the CLR just written — restart undo will
            // step from the dummy CLR to the CLR to rec.prev_lsn correctly.
            tree.page_delete_smo(logger, &search)?;
        }
        Ok(())
    }

    /// Undo a key delete: put the key back.
    fn undo_delete(
        &self,
        tree: &BTree,
        logger: &mut ChainLogger<'_>,
        rec: &LogRecord,
        key: &IndexKey,
    ) -> Result<()> {
        let clr_body = IndexBody::InsertKey {
            index: tree.index_id,
            key: key.clone(),
        };
        // Page-oriented attempt: right page, key *bounded* on it
        // (condition 3), and space available (condition 1).
        {
            let mut g = self.pool.fix_x(rec.page)?; // latch-rank: 2
            if Self::is_leaf_of(&g, tree) {
                let idx = leaf_lower_bound(&g, &SearchKey::from_key(key))?;
                let bounded = idx > 0 && idx < g.slot_count();
                let fits = g.total_free() >= key.wire_len() + SLOT_LEN;
                if bounded && fits {
                    apply_body(&mut g, rec.page, &clr_body)?;
                    let lsn = logger.clr(RmId::Index, rec.page, rec.prev_lsn, clr_body.encode());
                    g.record_update(lsn);
                    self.stats.undo_page_oriented.bump();
                    return Ok(());
                }
            }
        }
        // Logical undo under the tree latch; split first if needed
        // (condition 1 — the SMO is logged with regular records and its own
        // dummy CLR, *before* the compensating insert, Figure 8's ordering).
        self.stats.undo_logical.bump();
        let _tx = tree.tree_x(); // latch-rank: 1 (fresh)
        let search = SearchKey::from_key(key);
        let leaf_id = tree.split_smo(logger, &search, key.wire_len())?;
        let mut g = self.pool.fix_x(leaf_id)?; // latch-rank: 2
        apply_body(&mut g, leaf_id, &clr_body)?;
        let lsn = logger.clr(RmId::Index, leaf_id, rec.prev_lsn, clr_body.encode());
        g.record_update(lsn);
        Ok(())
    }
}

impl ResourceManager for IndexRm {
    fn rm_id(&self) -> RmId {
        RmId::Index
    }

    fn redo(&self, page: &mut PageBuf, rec: &LogRecord) -> Result<()> {
        let body = IndexBody::decode(&rec.body)?;
        apply_body(page, rec.page, &body)
    }

    fn undo(&self, logger: &mut ChainLogger<'_>, rec: &LogRecord) -> Result<()> {
        let body = IndexBody::decode(&rec.body)?;
        match &body {
            IndexBody::InsertKey { index, key } => {
                let tree = self.tree(*index)?;
                self.undo_insert(&tree, logger, rec, key)
            }
            IndexBody::DeleteKey { index, key } => {
                let tree = self.tree(*index)?;
                self.undo_delete(&tree, logger, rec, key)
            }
            IndexBody::PageRestore { .. } => Err(Error::Internal(
                "PageRestore is a CLR body and can never be undone".into(),
            )),
            // SMO bodies: page-oriented inverse + physical restore CLR.
            smo => {
                let mut g = self.pool.fix_x(rec.page)?; // latch-rank: 2
                undo_body(&mut g, rec.page, smo)?;
                let clr_body = snapshot_restore_body(&g, body.index())?;
                let lsn = logger.clr(RmId::Index, rec.page, rec.prev_lsn, clr_body.encode());
                g.record_update(lsn);
                self.stats.undo_page_oriented.bump();
                Ok(())
            }
        }
    }
}
