//! Applying index log bodies to pages — shared by forward processing and
//! the redo pass, which is what makes redo *exactly* repeat history: the
//! forward code constructs an [`IndexBody`], applies it through
//! [`apply_body`], and logs it; redo decodes the body and calls the same
//! function on the same page image.
//!
//! [`undo_body`] is the page-oriented inverse used to roll back a partially
//! completed SMO (paper §3: "Partially completed SMOs are undone in a
//! page-oriented fashion to restore the structural consistency of the
//! tree"). It is only ever called on records of an SMO that never finished,
//! so no other transaction can have touched the pages in between (the tree
//! latch and SM_Bits guarantee it), and the stored before-state is exact.

use crate::body::IndexBody;
use crate::node::{leaf_insert, leaf_remove, node_cell, NodeCell};
use ariesim_common::page::PageType;
use ariesim_common::{Error, PageBuf, PageId, Result};

fn index_page_type(level: u16) -> PageType {
    if level == 0 {
        PageType::IndexLeaf
    } else {
        PageType::IndexNonLeaf
    }
}

fn fill_cells(page: &mut PageBuf, cells: &[Vec<u8>]) -> Result<()> {
    for (i, c) in cells.iter().enumerate() {
        page.insert_cell_at(i as u16, c)?;
    }
    Ok(())
}

/// Apply (redo) `body` to `page`. `page_id` is the envelope's page — needed
/// when the body reformats the page from scratch.
pub fn apply_body(page: &mut PageBuf, page_id: PageId, body: &IndexBody) -> Result<()> {
    match body {
        IndexBody::InsertKey { key, .. } => {
            leaf_insert(page, key)?;
        }
        IndexBody::DeleteKey { key, .. } => {
            leaf_remove(page, key)?;
            // Figure 7: every key delete leaves the Delete_Bit set.
            page.set_delete_bit(true);
        }
        IndexBody::PageFormat {
            index,
            level,
            cells,
            prev,
            next,
            sm_bit,
        } => {
            page.format(page_id, index_page_type(*level), index.0, *level);
            fill_cells(page, cells)?;
            page.set_prev(*prev);
            page.set_next(*next);
            page.set_sm_bit(*sm_bit);
        }
        IndexBody::SplitShrink {
            removed,
            new_next,
            dropped_high,
            ..
        } => {
            let keep = page.slot_count() - removed.len() as u16;
            for _ in 0..removed.len() {
                page.delete_cell_at(keep)?;
            }
            if dropped_high.is_some() {
                // Nonleaf split: the new rightmost cell surrenders its high key.
                let last = page.slot_count() - 1;
                let cell = node_cell(page, last)?;
                page.replace_cell_at(
                    last,
                    &NodeCell {
                        child: cell.child,
                        high_key: None,
                    }
                    .encode(),
                )?;
            } else {
                page.set_next(*new_next);
            }
            page.set_sm_bit(true);
        }
        IndexBody::ChainNext { new, .. } => {
            page.set_next(*new);
            page.set_sm_bit(true);
        }
        IndexBody::ChainPrev { new, .. } => {
            page.set_prev(*new);
            page.set_sm_bit(true);
        }
        IndexBody::AddSeparator {
            slot,
            sep,
            new_child,
            ..
        } => {
            let old = node_cell(page, *slot)?;
            page.replace_cell_at(
                *slot,
                &NodeCell {
                    child: old.child,
                    high_key: Some(sep.clone()),
                }
                .encode(),
            )?;
            page.insert_cell_at(
                slot + 1,
                &NodeCell {
                    child: *new_child,
                    high_key: old.high_key,
                }
                .encode(),
            )?;
            page.set_sm_bit(true);
        }
        IndexBody::RemoveSeparator {
            slot,
            child,
            old_high,
            ..
        } => {
            let cell = node_cell(page, *slot)?;
            if cell.child != *child {
                return Err(Error::CorruptPage {
                    page: page_id,
                    reason: format!("RemoveSeparator slot {slot} points at {}", cell.child),
                });
            }
            page.delete_cell_at(*slot)?;
            if old_high.is_none() && *slot > 0 {
                // The removed cell was rightmost: its predecessor becomes
                // rightmost and surrenders its high key.
                let prev = node_cell(page, slot - 1)?;
                page.replace_cell_at(
                    slot - 1,
                    &NodeCell {
                        child: prev.child,
                        high_key: None,
                    }
                    .encode(),
                )?;
            }
            page.set_sm_bit(true);
        }
        IndexBody::FreePage { .. } => {
            page.format(page_id, PageType::Free, 0, 0);
        }
        IndexBody::RootReplace {
            index,
            new_level,
            child,
            ..
        } => {
            page.format(page_id, PageType::IndexNonLeaf, index.0, *new_level);
            page.insert_cell_at(
                0,
                &NodeCell {
                    child: *child,
                    high_key: None,
                }
                .encode(),
            )?;
            page.set_sm_bit(true);
        }
        IndexBody::RootCollapse { index, .. } => {
            page.format(page_id, PageType::IndexLeaf, index.0, 0);
            page.set_sm_bit(true);
        }
        IndexBody::PageRestore {
            index,
            level,
            free,
            prev,
            next,
            sm_bit,
            delete_bit,
            cells,
        } => {
            if *free {
                page.format(page_id, PageType::Free, 0, 0);
            } else {
                page.format(page_id, index_page_type(*level), index.0, *level);
                fill_cells(page, cells)?;
                page.set_prev(*prev);
                page.set_next(*next);
                page.set_sm_bit(*sm_bit);
                page.set_delete_bit(*delete_bit);
            }
        }
    }
    Ok(())
}

/// Page-oriented inverse of an SMO body (incomplete-SMO rollback only).
/// Key bodies (`InsertKey`/`DeleteKey`) are handled by the resource
/// manager's richer undo logic, never here.
pub fn undo_body(page: &mut PageBuf, page_id: PageId, body: &IndexBody) -> Result<()> {
    match body {
        IndexBody::PageFormat { .. } => {
            // The page was fresh; undoing its format frees it (the space-map
            // undo clears the allocation bit separately).
            page.format(page_id, PageType::Free, 0, 0);
        }
        IndexBody::SplitShrink {
            removed,
            old_next,
            dropped_high,
            ..
        } => {
            if let Some(h) = dropped_high {
                let last = page.slot_count() - 1;
                let cell = node_cell(page, last)?;
                page.replace_cell_at(
                    last,
                    &NodeCell {
                        child: cell.child,
                        high_key: Some(h.clone()),
                    }
                    .encode(),
                )?;
            } else {
                page.set_next(*old_next);
            }
            for c in removed {
                let at = page.slot_count();
                page.insert_cell_at(at, c)?;
            }
        }
        IndexBody::ChainNext { old, .. } => page.set_next(*old),
        IndexBody::ChainPrev { old, .. } => page.set_prev(*old),
        IndexBody::AddSeparator {
            slot, new_child, ..
        } => {
            let added = node_cell(page, slot + 1)?;
            if added.child != *new_child {
                return Err(Error::CorruptPage {
                    page: page_id,
                    reason: "AddSeparator undo: unexpected cell".into(),
                });
            }
            page.delete_cell_at(slot + 1)?;
            let orig = node_cell(page, *slot)?;
            page.replace_cell_at(
                *slot,
                &NodeCell {
                    child: orig.child,
                    high_key: added.high_key,
                }
                .encode(),
            )?;
        }
        IndexBody::RemoveSeparator {
            slot,
            child,
            old_high,
            dropped_high,
            ..
        } => {
            if old_high.is_none() && *slot > 0 {
                let prev = node_cell(page, slot - 1)?;
                page.replace_cell_at(
                    slot - 1,
                    &NodeCell {
                        child: prev.child,
                        high_key: dropped_high.clone(),
                    }
                    .encode(),
                )?;
            }
            page.insert_cell_at(
                *slot,
                &NodeCell {
                    child: *child,
                    high_key: old_high.clone(),
                }
                .encode(),
            )?;
        }
        IndexBody::FreePage {
            index,
            level,
            prev,
            next,
        } => {
            page.format(page_id, index_page_type(*level), index.0, *level);
            page.set_prev(*prev);
            page.set_next(*next);
            page.set_sm_bit(true);
        }
        IndexBody::RootReplace {
            index,
            old_level,
            old_cells,
            ..
        } => {
            page.format(page_id, index_page_type(*old_level), index.0, *old_level);
            fill_cells(page, old_cells)?;
            page.set_sm_bit(true);
        }
        IndexBody::RootCollapse {
            index,
            old_level,
            old_cells,
        } => {
            page.format(page_id, index_page_type(*old_level), index.0, *old_level);
            fill_cells(page, old_cells)?;
            page.set_sm_bit(true);
        }
        IndexBody::InsertKey { .. } | IndexBody::DeleteKey { .. } | IndexBody::PageRestore { .. } => {
            return Err(Error::Internal(
                "undo_body called on a non-SMO body".into(),
            ));
        }
    }
    Ok(())
}

/// Snapshot a page into a [`IndexBody::PageRestore`] CLR body.
pub fn snapshot_restore_body(
    page: &PageBuf,
    index: ariesim_common::IndexId,
) -> Result<IndexBody> {
    let free = matches!(page.page_type(), Ok(PageType::Free));
    Ok(IndexBody::PageRestore {
        index,
        level: page.level(),
        free,
        prev: page.prev(),
        next: page.next(),
        sm_bit: page.sm_bit(),
        delete_bit: page.delete_bit(),
        cells: if free {
            Vec::new()
        } else {
            crate::node::raw_cells(page)?
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariesim_common::{IndexId, IndexKey, Rid};

    fn key(v: &str) -> IndexKey {
        IndexKey::new(v.as_bytes().to_vec(), Rid::new(PageId(50), 0))
    }

    fn fresh_leaf(id: PageId) -> PageBuf {
        let mut p = PageBuf::zeroed();
        p.format(id, PageType::IndexLeaf, 1, 0);
        p
    }

    #[test]
    fn insert_delete_roundtrip_via_bodies() {
        let mut p = fresh_leaf(PageId(3));
        let ins = IndexBody::InsertKey {
            index: IndexId(1),
            key: key("k"),
        };
        apply_body(&mut p, PageId(3), &ins).unwrap();
        assert_eq!(p.slot_count(), 1);
        let del = IndexBody::DeleteKey {
            index: IndexId(1),
            key: key("k"),
        };
        apply_body(&mut p, PageId(3), &del).unwrap();
        assert_eq!(p.slot_count(), 0);
        assert!(p.delete_bit(), "delete must set the Delete_Bit");
    }

    #[test]
    fn split_shrink_apply_then_undo_is_identity() {
        let mut p = fresh_leaf(PageId(3));
        for v in ["a", "b", "c", "d"] {
            leaf_insert(&mut p, &key(v)).unwrap();
        }
        p.set_next(PageId(9));
        let before = crate::node::raw_cells(&p).unwrap();
        let body = IndexBody::SplitShrink {
            index: IndexId(1),
            removed: before[2..].to_vec(),
            old_next: PageId(9),
            new_next: PageId(7),
            dropped_high: None,
        };
        apply_body(&mut p, PageId(3), &body).unwrap();
        assert_eq!(p.slot_count(), 2);
        assert_eq!(p.next(), PageId(7));
        assert!(p.sm_bit());
        undo_body(&mut p, PageId(3), &body).unwrap();
        assert_eq!(crate::node::raw_cells(&p).unwrap(), before);
        assert_eq!(p.next(), PageId(9));
    }

    fn nonleaf_with_three(id: PageId) -> PageBuf {
        let mut p = PageBuf::zeroed();
        p.format(id, PageType::IndexNonLeaf, 1, 1);
        let cells = [
            NodeCell {
                child: PageId(10),
                high_key: Some(key("g")),
            },
            NodeCell {
                child: PageId(11),
                high_key: Some(key("p")),
            },
            NodeCell {
                child: PageId(12),
                high_key: None,
            },
        ];
        for (i, c) in cells.iter().enumerate() {
            p.insert_cell_at(i as u16, &c.encode()).unwrap();
        }
        p
    }

    #[test]
    fn add_separator_apply_then_undo_is_identity() {
        let mut p = nonleaf_with_three(PageId(2));
        let before = crate::node::raw_cells(&p).unwrap();
        let body = IndexBody::AddSeparator {
            index: IndexId(1),
            slot: 1,
            sep: key("k"),
            new_child: PageId(20),
        };
        apply_body(&mut p, PageId(2), &body).unwrap();
        // cell1 = {11, "k"}, cell2 = {20, "p"}
        assert_eq!(p.slot_count(), 4);
        let c1 = node_cell(&p, 1).unwrap();
        let c2 = node_cell(&p, 2).unwrap();
        assert_eq!((c1.child, c1.high_key.unwrap()), (PageId(11), key("k")));
        assert_eq!((c2.child, c2.high_key.unwrap()), (PageId(20), key("p")));
        undo_body(&mut p, PageId(2), &body).unwrap();
        assert_eq!(crate::node::raw_cells(&p).unwrap(), before);
    }

    #[test]
    fn add_separator_on_rightmost_cell() {
        let mut p = nonleaf_with_three(PageId(2));
        let body = IndexBody::AddSeparator {
            index: IndexId(1),
            slot: 2,
            sep: key("w"),
            new_child: PageId(21),
        };
        apply_body(&mut p, PageId(2), &body).unwrap();
        let c2 = node_cell(&p, 2).unwrap();
        let c3 = node_cell(&p, 3).unwrap();
        assert_eq!((c2.child, c2.high_key.clone().unwrap()), (PageId(12), key("w")));
        assert_eq!((c3.child, c3.high_key), (PageId(21), None));
    }

    #[test]
    fn remove_separator_middle_and_rightmost() {
        // Middle removal.
        let mut p = nonleaf_with_three(PageId(2));
        let before = crate::node::raw_cells(&p).unwrap();
        let mid = IndexBody::RemoveSeparator {
            index: IndexId(1),
            slot: 1,
            child: PageId(11),
            old_high: Some(key("p")),
            dropped_high: None,
        };
        apply_body(&mut p, PageId(2), &mid).unwrap();
        assert_eq!(p.slot_count(), 2);
        undo_body(&mut p, PageId(2), &mid).unwrap();
        assert_eq!(crate::node::raw_cells(&p).unwrap(), before);

        // Rightmost removal: predecessor surrenders its high key.
        let rm = IndexBody::RemoveSeparator {
            index: IndexId(1),
            slot: 2,
            child: PageId(12),
            old_high: None,
            dropped_high: Some(key("p")),
        };
        apply_body(&mut p, PageId(2), &rm).unwrap();
        assert_eq!(p.slot_count(), 2);
        let new_last = node_cell(&p, 1).unwrap();
        assert_eq!((new_last.child, new_last.high_key.clone()), (PageId(11), None));
        undo_body(&mut p, PageId(2), &rm).unwrap();
        assert_eq!(crate::node::raw_cells(&p).unwrap(), before);
    }

    #[test]
    fn free_page_apply_then_undo() {
        let mut p = fresh_leaf(PageId(6));
        p.set_prev(PageId(5));
        p.set_next(PageId(7));
        let body = IndexBody::FreePage {
            index: IndexId(1),
            level: 0,
            prev: PageId(5),
            next: PageId(7),
        };
        apply_body(&mut p, PageId(6), &body).unwrap();
        assert_eq!(p.page_type().unwrap(), PageType::Free);
        undo_body(&mut p, PageId(6), &body).unwrap();
        assert_eq!(p.page_type().unwrap(), PageType::IndexLeaf);
        assert_eq!((p.prev(), p.next()), (PageId(5), PageId(7)));
        assert!(p.sm_bit());
    }

    #[test]
    fn root_replace_apply_then_undo() {
        let mut p = fresh_leaf(PageId(2));
        leaf_insert(&mut p, &key("x")).unwrap();
        let cells = crate::node::raw_cells(&p).unwrap();
        let body = IndexBody::RootReplace {
            index: IndexId(1),
            old_level: 0,
            new_level: 1,
            child: PageId(30),
            old_cells: cells.clone(),
        };
        apply_body(&mut p, PageId(2), &body).unwrap();
        assert_eq!(p.page_type().unwrap(), PageType::IndexNonLeaf);
        assert_eq!(p.level(), 1);
        let c = node_cell(&p, 0).unwrap();
        assert_eq!((c.child, c.high_key), (PageId(30), None));
        undo_body(&mut p, PageId(2), &body).unwrap();
        assert_eq!(p.page_type().unwrap(), PageType::IndexLeaf);
        assert_eq!(crate::node::raw_cells(&p).unwrap(), cells);
    }

    #[test]
    fn page_restore_reconstructs_exactly() {
        let mut p = fresh_leaf(PageId(4));
        leaf_insert(&mut p, &key("a")).unwrap();
        leaf_insert(&mut p, &key("b")).unwrap();
        p.set_next(PageId(9));
        p.set_delete_bit(true);
        let snap = snapshot_restore_body(&p, IndexId(1)).unwrap();
        let mut q = PageBuf::zeroed();
        apply_body(&mut q, PageId(4), &snap).unwrap();
        assert_eq!(
            crate::node::raw_cells(&q).unwrap(),
            crate::node::raw_cells(&p).unwrap()
        );
        assert_eq!(q.next(), PageId(9));
        assert!(q.delete_bit());
    }
}
