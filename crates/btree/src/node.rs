//! Index page cell formats and search helpers.
//!
//! Leaf cells are encoded [`IndexKey`]s kept in sorted order. Nonleaf cells
//! are [`NodeCell`]s: a child pointer plus an optional *high key* — the paper
//! §1.1 architecture where "every nonleaf page contains a certain number of
//! child page pointers and one less number of high keys", the rightmost
//! child having none. A child's high key is strictly greater than every key
//! actually stored in that child's subtree.

use ariesim_common::codec::{Reader, Writer};
use ariesim_common::key::SearchKey;
use ariesim_common::{Error, IndexKey, PageBuf, PageId, Result};
use std::cmp::Ordering;

/// One nonleaf cell: a child pointer and (except for the rightmost cell) its
/// high key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeCell {
    pub child: PageId,
    /// `None` only for the rightmost cell of a nonleaf page.
    pub high_key: Option<IndexKey>,
}

impl NodeCell {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(self.high_key.is_some() as u8).page_id(self.child);
        if let Some(k) = &self.high_key {
            k.encode_into(&mut w);
        }
        w.into_vec()
    }

    pub fn decode(buf: &[u8]) -> Result<NodeCell> {
        let mut r = Reader::new(buf);
        let has_high = r.u8()? != 0;
        let child = r.page_id()?;
        let high_key = if has_high {
            Some(IndexKey::decode_from(&mut r)?)
        } else {
            None
        };
        Ok(NodeCell { child, high_key })
    }
}

/// Decode the leaf key at slot `i`.
pub fn leaf_key(page: &PageBuf, i: u16) -> Result<IndexKey> {
    let cell = page
        .cell(i)
        .ok_or_else(|| Error::CorruptPage {
            page: page.page_id(),
            reason: format!("missing leaf cell {i}"),
        })?;
    IndexKey::decode(cell)
}

/// Decode the nonleaf cell at slot `i`.
pub fn node_cell(page: &PageBuf, i: u16) -> Result<NodeCell> {
    let cell = page
        .cell(i)
        .ok_or_else(|| Error::CorruptPage {
            page: page.page_id(),
            reason: format!("missing node cell {i}"),
        })?;
    NodeCell::decode(cell)
}

/// Binary-search a leaf for the first slot whose key is ≥ `search`.
/// Returns `slot_count` if every key is smaller.
pub fn leaf_lower_bound(page: &PageBuf, search: &SearchKey<'_>) -> Result<u16> {
    let (mut lo, mut hi) = (0u16, page.slot_count());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let k = leaf_key(page, mid)?;
        match search.cmp_key(&k) {
            Ordering::Greater => lo = mid + 1,
            _ => hi = mid,
        }
    }
    Ok(lo)
}

/// Does the leaf contain exactly `key`?
pub fn leaf_contains(page: &PageBuf, key: &IndexKey) -> Result<Option<u16>> {
    let idx = leaf_lower_bound(page, &SearchKey::from_key(key))?;
    if idx < page.slot_count() && leaf_key(page, idx)? == *key {
        Ok(Some(idx))
    } else {
        Ok(None)
    }
}

/// Insert `key` into a leaf at its sorted position. Fails with
/// [`Error::TooLarge`] when the page is full.
pub fn leaf_insert(page: &mut PageBuf, key: &IndexKey) -> Result<u16> {
    let idx = leaf_lower_bound(page, &SearchKey::from_key(key))?;
    debug_assert!(
        !(idx < page.slot_count() && leaf_key(page, idx)? == *key),
        "duplicate full key {key:?} in leaf {}",
        page.page_id()
    );
    page.insert_cell_at(idx, &key.encode())?;
    Ok(idx)
}

/// Remove `key` from a leaf. Errors if absent.
pub fn leaf_remove(page: &mut PageBuf, key: &IndexKey) -> Result<u16> {
    match leaf_contains(page, key)? {
        Some(idx) => {
            page.delete_cell_at(idx)?;
            Ok(idx)
        }
        None => Err(Error::NotFound),
    }
}

/// All keys of a leaf, in order (checker/SMO use).
pub fn leaf_keys(page: &PageBuf) -> Result<Vec<IndexKey>> {
    (0..page.slot_count()).map(|i| leaf_key(page, i)).collect()
}

/// All cells of a nonleaf, in order.
pub fn node_cells(page: &PageBuf) -> Result<Vec<NodeCell>> {
    (0..page.slot_count()).map(|i| node_cell(page, i)).collect()
}

/// The largest high key stored in a nonleaf page — the "highest key in
/// child" of Figure 4's ambiguity test. `None` if the page has at most one
/// cell (only a rightmost child, which carries no high key).
pub fn node_highest_high_key(page: &PageBuf) -> Result<Option<IndexKey>> {
    let n = page.slot_count();
    if n < 2 {
        return Ok(None);
    }
    // Cells are ordered; the last cell with a high key is at n-2.
    Ok(node_cell(page, n - 2)?.high_key)
}

/// Choose the child to descend into for `search`: the first cell whose high
/// key is strictly greater than the search key; the rightmost cell if none.
///
/// Returns `(slot, child)`. Errors on an empty nonleaf (the caller treats
/// that as the Figure 4 ambiguous case before ever calling this).
pub fn node_search(page: &PageBuf, search: &SearchKey<'_>) -> Result<(u16, PageId)> {
    let n = page.slot_count();
    if n == 0 {
        return Err(Error::CorruptPage {
            page: page.page_id(),
            reason: "search in empty nonleaf".into(),
        });
    }
    // Binary search over the high-keyed prefix [0, n-1).
    let (mut lo, mut hi) = (0u16, n - 1);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let cell = node_cell(page, mid)?;
        let high = cell.high_key.as_ref().ok_or_else(|| Error::CorruptPage {
            page: page.page_id(),
            reason: format!("cell {mid} of {} missing high key", page.page_id()),
        })?;
        // Child covers keys strictly below its high key.
        match search.cmp_key(high) {
            Ordering::Less => hi = mid,
            _ => lo = mid + 1,
        }
    }
    Ok((lo, node_cell(page, lo)?.child))
}

/// Find the slot of the cell pointing at `child`. Errors if absent.
pub fn node_find_child(page: &PageBuf, child: PageId) -> Result<u16> {
    for i in 0..page.slot_count() {
        if node_cell(page, i)?.child == child {
            return Ok(i);
        }
    }
    Err(Error::CorruptPage {
        page: page.page_id(),
        reason: format!("no cell points at {child}"),
    })
}

/// Encode a list of raw cells (leaf keys or node cells, already encoded)
/// into a blob for a log record: u16 count then u16-length-prefixed cells.
pub fn encode_cells_blob(cells: &[Vec<u8>]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u16(cells.len() as u16);
    for c in cells {
        w.bytes(c);
    }
    w.into_vec()
}

/// Decode a blob written by [`encode_cells_blob`].
pub fn decode_cells_blob(buf: &[u8]) -> Result<Vec<Vec<u8>>> {
    let mut r = Reader::new(buf);
    let n = r.u16()?;
    (0..n).map(|_| Ok(r.bytes()?.to_vec())).collect()
}

/// Raw cell bytes of a page, in slot order.
pub fn raw_cells(page: &PageBuf) -> Result<Vec<Vec<u8>>> {
    (0..page.slot_count())
        .map(|i| {
            page.cell(i)
                .map(|c| c.to_vec())
                .ok_or_else(|| Error::CorruptPage {
                    page: page.page_id(),
                    reason: format!("dead slot {i} on index page"),
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariesim_common::page::PageType;
    use ariesim_common::Rid;

    fn key(v: &str, slot: u16) -> IndexKey {
        IndexKey::new(v.as_bytes().to_vec(), Rid::new(PageId(100), slot))
    }

    fn leaf_with(keys: &[IndexKey]) -> PageBuf {
        let mut p = PageBuf::zeroed();
        p.format(PageId(1), PageType::IndexLeaf, 1, 0);
        for k in keys {
            leaf_insert(&mut p, k).unwrap();
        }
        p
    }

    #[test]
    fn leaf_insert_keeps_sorted_order() {
        let p = leaf_with(&[key("m", 0), key("a", 0), key("z", 0), key("m", 1)]);
        let keys = leaf_keys(&p).unwrap();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), 4);
    }

    #[test]
    fn leaf_lower_bound_value_only_and_full() {
        let p = leaf_with(&[key("b", 0), key("b", 1), key("d", 0)]);
        assert_eq!(leaf_lower_bound(&p, &SearchKey::value_only(b"a")).unwrap(), 0);
        assert_eq!(leaf_lower_bound(&p, &SearchKey::value_only(b"b")).unwrap(), 0);
        assert_eq!(
            leaf_lower_bound(&p, &SearchKey::full(b"b", Rid::new(PageId(100), 1))).unwrap(),
            1
        );
        assert_eq!(leaf_lower_bound(&p, &SearchKey::value_only(b"c")).unwrap(), 2);
        assert_eq!(leaf_lower_bound(&p, &SearchKey::value_only(b"z")).unwrap(), 3);
    }

    #[test]
    fn leaf_contains_and_remove() {
        let k = key("q", 3);
        let mut p = leaf_with(&[key("a", 0), k.clone(), key("z", 0)]);
        assert_eq!(leaf_contains(&p, &k).unwrap(), Some(1));
        assert_eq!(leaf_remove(&mut p, &k).unwrap(), 1);
        assert_eq!(leaf_contains(&p, &k).unwrap(), None);
        assert!(matches!(leaf_remove(&mut p, &k), Err(Error::NotFound)));
    }

    #[test]
    fn node_cell_roundtrip() {
        let with_high = NodeCell {
            child: PageId(5),
            high_key: Some(key("sep", 0)),
        };
        let rightmost = NodeCell {
            child: PageId(6),
            high_key: None,
        };
        assert_eq!(NodeCell::decode(&with_high.encode()).unwrap(), with_high);
        assert_eq!(NodeCell::decode(&rightmost.encode()).unwrap(), rightmost);
    }

    fn nonleaf_with(cells: &[NodeCell]) -> PageBuf {
        let mut p = PageBuf::zeroed();
        p.format(PageId(2), PageType::IndexNonLeaf, 1, 1);
        for (i, c) in cells.iter().enumerate() {
            p.insert_cell_at(i as u16, &c.encode()).unwrap();
        }
        p
    }

    #[test]
    fn node_search_routes_by_high_key() {
        // children: A covers < "g", B covers < "p", C rightmost.
        let p = nonleaf_with(&[
            NodeCell {
                child: PageId(10),
                high_key: Some(key("g", 0)),
            },
            NodeCell {
                child: PageId(11),
                high_key: Some(key("p", 0)),
            },
            NodeCell {
                child: PageId(12),
                high_key: None,
            },
        ]);
        assert_eq!(
            node_search(&p, &SearchKey::value_only(b"a")).unwrap(),
            (0, PageId(10))
        );
        // Equal to a high key routes right (high key strictly greater than
        // everything in the child). A value-only search for "g" compares less
        // than the full high key ("g", rid) so it routes left — which is
        // correct: a duplicate ("g", small-rid) could live in A.
        assert_eq!(
            node_search(&p, &SearchKey::value_only(b"g")).unwrap().1,
            PageId(10)
        );
        assert_eq!(
            node_search(&p, &SearchKey::full(b"g", Rid::new(PageId(100), 0)))
                .unwrap()
                .1,
            PageId(11)
        );
        assert_eq!(
            node_search(&p, &SearchKey::value_only(b"k")).unwrap().1,
            PageId(11)
        );
        assert_eq!(
            node_search(&p, &SearchKey::value_only(b"zzz")).unwrap().1,
            PageId(12)
        );
    }

    #[test]
    fn node_highest_high_key_rules() {
        let only_rightmost = nonleaf_with(&[NodeCell {
            child: PageId(10),
            high_key: None,
        }]);
        assert_eq!(node_highest_high_key(&only_rightmost).unwrap(), None);
        let two = nonleaf_with(&[
            NodeCell {
                child: PageId(10),
                high_key: Some(key("m", 0)),
            },
            NodeCell {
                child: PageId(11),
                high_key: None,
            },
        ]);
        assert_eq!(node_highest_high_key(&two).unwrap(), Some(key("m", 0)));
    }

    #[test]
    fn node_find_child_works() {
        let p = nonleaf_with(&[
            NodeCell {
                child: PageId(10),
                high_key: Some(key("m", 0)),
            },
            NodeCell {
                child: PageId(11),
                high_key: None,
            },
        ]);
        assert_eq!(node_find_child(&p, PageId(11)).unwrap(), 1);
        assert!(node_find_child(&p, PageId(99)).is_err());
    }

    #[test]
    fn cells_blob_roundtrip() {
        let cells = vec![b"one".to_vec(), Vec::new(), b"three".to_vec()];
        let blob = encode_cells_blob(&cells);
        assert_eq!(decode_cells_blob(&blob).unwrap(), cells);
        assert_eq!(decode_cells_blob(&encode_cells_blob(&[])).unwrap().len(), 0);
    }

    #[test]
    fn raw_cells_matches_inserted() {
        let p = leaf_with(&[key("a", 0), key("b", 0)]);
        let raw = raw_cells(&p).unwrap();
        assert_eq!(raw.len(), 2);
        assert_eq!(IndexKey::decode(&raw[0]).unwrap(), key("a", 0));
    }
}
