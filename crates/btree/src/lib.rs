//! ARIES/IM B+-tree index manager — the paper's primary contribution.
//!
//! Implements the concurrency-control and recovery protocol of
//! *ARIES/IM: An Efficient and High Concurrency Index Management Method
//! Using Write-Ahead Logging* (Mohan & Levine, SIGMOD 1992):
//!
//! * **Tree architecture** (§1.1): leaf keys are (key-value, RID) pairs;
//!   leaves are forward/backward chained; a nonleaf holds child pointers and
//!   one fewer *high keys* — none for its rightmost child ([`node`]).
//! * **Traversal** (Figure 4): latch coupling, at most two page latches, the
//!   SM_Bit ambiguity test, instant tree-latch waits ([`traverse`]).
//! * **Fetch / Fetch Next** (§2.2–2.3, Figure 5): conditional key lock under
//!   latches, LSN-revalidation after an unconditional wait, next-key locking
//!   of the not-found case, the per-index EOF lock ([`fetch`]).
//! * **Insert** (§2.4, Figure 6): instant-duration X next-key lock, unique
//!   violation detection via a commit-duration S lock, Delete_Bit / SM_Bit
//!   POSC establishment ([`insert`]).
//! * **Delete** (§2.5, Figure 7): commit-duration X next-key lock, Delete_Bit
//!   setting, tree-latch protection of boundary-key deletes ([`delete`]).
//! * **SMOs** (Figures 8–10): page splits and page deletions as nested top
//!   actions, serialized by the X tree latch, propagated bottom-up with
//!   SM_Bits set, finished with a dummy CLR; the key insert that caused a
//!   split happens after the SMO, the key delete that caused a page deletion
//!   happens before it ([`smo`]).
//! * **Recovery** (§3): page-oriented redo always; page-oriented undo when
//!   possible and logical undo (retraversal) otherwise, with SMOs during
//!   undo logged as regular records ([`rmimpl`]).
//!
//! Locking is pluggable per the paper's §2.1: [`LockProtocol::DataOnly`]
//! (lock the record the key's RID names) or [`LockProtocol::IndexSpecific`]
//! (lock the individual key). The ARIES/KVL baseline lives in `ariesim-kvl`.

pub mod apply;
pub mod body;
pub mod check;
pub mod delete;
pub mod fetch;
pub mod insert;
pub mod node;
pub mod rmimpl;
pub mod smo;
pub mod traverse;

use ariesim_common::stats::StatsHandle;
use ariesim_common::{IndexId, PageId, Result};
use ariesim_lock::{LockManager, LockName};
use ariesim_obs::ObsHandle;
use ariesim_storage::{BufferPool, SpaceMap};
use ariesim_txn::TxnHandle;
use ariesim_wal::LogManager;
use parking_lot::RwLock;
use std::sync::Arc;

pub use fetch::{Cursor, FetchResult};
pub use rmimpl::IndexRm;
pub use traverse::{TreeSGuard, TreeXGuard};

/// Which names the index manager locks (paper §2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockProtocol {
    /// Data-only locking: a key's lock is the lock on the record its RID
    /// names. The index never locks its own structures; single-record
    /// operations need no extra index locks.
    DataOnly,
    /// Index-specific locking: lock the individual key (value + RID) in this
    /// index. Slightly more concurrency than data-only (the paper's remark),
    /// at the cost of extra locks per operation.
    IndexSpecific,
    /// ARIES/KVL key-value locking \[Moha90a\] — the baseline the paper
    /// improves on: locks cover whole key *values*, so every duplicate of a
    /// value shares one lock, and the mode/duration table differs (IX commit
    /// current-value locks on inserts, X commit next-value locks only when
    /// deleting the last instance of a value). Implemented here so both
    /// protocols share one tree; `ariesim-kvl` documents and tests it.
    KeyValue,
}

/// One B+-tree index.
///
/// The root page id is fixed for the index's lifetime (root splits grow the
/// tree *in place* by moving the root's contents down), so no root pointer
/// is ever updated or logged.
pub struct BTree {
    pub index_id: IndexId,
    pub root: PageId,
    /// Reject duplicate key *values* (paper §2.4 unique-index rules).
    pub unique: bool,
    pub protocol: LockProtocol,
    /// Data-only locking at *page* granularity (§2.1: "or the data page ID
    /// which is part of the record ID, if the locking granularity is a
    /// page"): key locks name the key's data page instead of its record.
    pub page_granularity: bool,
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) locks: Arc<LockManager>,
    pub(crate) log: Arc<LogManager>,
    pub(crate) space: SpaceMap,
    /// THE tree latch (§2.1): X serializes SMOs; S waits for them; instant S
    /// establishes a point of structural consistency (POSC).
    pub(crate) tree_latch: RwLock<()>,
    pub(crate) stats: StatsHandle,
    /// Shared with the buffer pool's handle, so one `--obs` switch at rig
    /// construction covers latches, locks, I/O, and index operations alike.
    pub(crate) obs: ObsHandle,
}

impl BTree {
    /// Open a handle onto an existing index rooted at `root`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        index_id: IndexId,
        root: PageId,
        unique: bool,
        protocol: LockProtocol,
        pool: Arc<BufferPool>,
        locks: Arc<LockManager>,
        log: Arc<LogManager>,
        stats: StatsHandle,
    ) -> Arc<BTree> {
        Self::new_with_granularity(
            index_id, root, unique, protocol, false, pool, locks, log, stats,
        )
    }

    /// [`BTree::new`] with explicit data-lock granularity (record or page).
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_granularity(
        index_id: IndexId,
        root: PageId,
        unique: bool,
        protocol: LockProtocol,
        page_granularity: bool,
        pool: Arc<BufferPool>,
        locks: Arc<LockManager>,
        log: Arc<LogManager>,
        stats: StatsHandle,
    ) -> Arc<BTree> {
        let obs = pool.obs().clone();
        Arc::new(BTree {
            index_id,
            root,
            unique,
            protocol,
            page_granularity,
            space: SpaceMap::new(pool.clone()),
            pool,
            locks,
            log,
            tree_latch: RwLock::new(()),
            stats,
            obs,
        })
    }

    /// Create a new empty index inside `txn`: allocates and formats the root
    /// as an empty leaf. Returns the root page id.
    pub fn create(
        txn: &TxnHandle,
        index_id: IndexId,
        pool: &Arc<BufferPool>,
        log: &Arc<LogManager>,
    ) -> Result<PageId> {
        use ariesim_common::page::PageType;
        use ariesim_wal::RmId;
        let space = SpaceMap::new(pool.clone());
        txn.with_logger(log, |logger| {
            let root = space.allocate(logger)?;
            let mut g = pool.fix_x(root)?; // latch-rank: 2
            g.format(root, PageType::IndexLeaf, index_id.0, 0);
            let lsn = logger.update(
                RmId::Index,
                root,
                body::IndexBody::PageFormat {
                    index: index_id,
                    level: 0,
                    cells: Vec::new(),
                    prev: PageId::NULL,
                    next: PageId::NULL,
                    sm_bit: false,
                }
                .encode(),
            );
            g.record_update(lsn);
            Ok(root)
        })
    }

    /// Lock name covering `key` under this index's protocol (§2.1).
    pub(crate) fn key_lock(&self, key: &ariesim_common::IndexKey) -> LockName {
        match self.protocol {
            LockProtocol::DataOnly => LockName::for_data(key.rid, self.page_granularity),
            LockProtocol::IndexSpecific => LockName::KeyValue(self.index_id, key.encode()),
            // KVL locks the key *value*: all duplicates share the name.
            LockProtocol::KeyValue => LockName::KeyValue(self.index_id, key.value.clone()),
        }
    }

    /// The per-index EOF lock name (§2.2: used when no next key exists).
    pub(crate) fn eof_lock(&self) -> LockName {
        LockName::Eof(self.index_id)
    }
}

/// Largest permitted key value, in bytes. Bounds split fan-out (a full page
/// always holds at least four keys) so the paper's guarantee that a split
/// leaves at least one key on the original page always holds.
pub const MAX_KEY_VALUE_LEN: usize = 1024;

impl BTree {
    /// Test/experiment hook: acquire the X tree latch, simulating an SMO in
    /// progress (used by the Figure 3 scenario and the SMO ablation bench).
    pub fn hold_tree_latch_x(&self) -> TreeXGuard<'_> {
        ariesim_obs::lockdep::acquired(
            ariesim_obs::lockdep::Class::TreeLatch,
            "btree::hold_tree_latch_x",
            true,
        );
        TreeXGuard(self.tree_latch.write())
    }

    /// Test/experiment hook: set or clear the SM_Bit / Delete_Bit on a page,
    /// manufacturing the warning state a partially completed SMO leaves
    /// behind (Figures 3 and 11).
    pub fn set_page_bits_for_test(
        &self,
        page: ariesim_common::PageId,
        sm_bit: Option<bool>,
        delete_bit: Option<bool>,
    ) -> Result<()> {
        let mut g = self.pool.fix_x(page)?; // latch-rank: 2
        if let Some(v) = sm_bit {
            g.set_sm_bit(v);
        }
        if let Some(v) = delete_bit {
            g.set_delete_bit(v);
        }
        let lsn = g.page_lsn();
        g.mark_dirty_raw(lsn);
        Ok(())
    }

    /// The leaf page currently covering `value` (test/experiment helper).
    pub fn leaf_for_value(&self, value: &[u8]) -> Result<PageId> {
        let leaf = self.traverse(&ariesim_common::key::SearchKey::value_only(value), false)?;
        Ok(leaf.page_id())
    }
}
