//! Key delete — the paper's §2.5 and Figure 7, with the page-deletion path
//! of Figure 8/10.
//!
//! Protocol summary:
//!
//! * The **next key** is locked X for **commit** duration: the uncommitted
//!   delete makes the key invisible, so another key must carry the warning
//!   ("the tripping point has to be another key which must be guaranteed to
//!   be a stable one", §2.6). Fetches and inserts of the deleted value trip
//!   on this lock until the deleter commits.
//! * A delete of a **boundary key** (smallest or largest on the page) first
//!   establishes a POSC by holding the S tree latch across the delete
//!   (§3, third reason for logical undo: the undo of such a delete may find
//!   the key no longer *bounded* on the page and need a traversal — so the
//!   delete must not be logged inside a region of structural inconsistency).
//! * Every delete sets the leaf's **Delete_Bit** (applied by the log
//!   record's redo), warning future space consumers (Figure 11).
//! * If the delete empties the page, the operation runs under the **X tree
//!   latch**: key delete first (logged normally), then the page-deletion SMO
//!   as a nested top action whose dummy CLR points at the key-delete record
//!   (Figure 10) — so rollback skips the SMO but still undoes the delete.

use crate::body::IndexBody;
use crate::fetch::{successor_search, NextKey};
use crate::node::{leaf_contains, leaf_key};
use crate::traverse::LeafGuard;
use crate::{BTree, LockProtocol};
use ariesim_common::key::SearchKey;
use ariesim_common::stats::Bump;
use ariesim_common::{Error, IndexKey, PageBuf, Result};
use ariesim_lock::{LockDuration, LockMode, LockName};
use ariesim_txn::TxnHandle;
use ariesim_wal::RmId;

enum DelStep {
    Done,
    /// Conditional lock denied under the tree latch: release it, wait for
    /// the named lock unconditionally, retry.
    WaitLock(LockName, LockMode, LockDuration),
    NotFound,
}

impl BTree {
    /// Delete `key`. [`Error::NotFound`] if absent (after locking the next
    /// key, so the absence is repeatable).
    pub fn delete(&self, txn: &TxnHandle, key: &IndexKey) -> Result<()> {
        let op = self.obs.timer();
        let r = self.delete_inner(txn, key);
        self.obs.hist.op_delete.record_since(op);
        r
    }

    fn delete_inner(&self, txn: &TxnHandle, key: &IndexKey) -> Result<()> {
        self.stats.index_deletes.bump();
        let search = SearchKey::from_key(key);
        let mut need_tree_s = false;
        loop {
            // Boundary-key deletes hold the S tree latch across the whole
            // action (Figure 7). We learn we need it mid-attempt; the retry
            // acquires it up front. The guard is taken (released) before any
            // unconditional lock wait — §4: no lock is ever waited for while
            // holding a latch, and the tree latch is a latch.
            let mut tree_s_guard = if need_tree_s {
                need_tree_s = false;
                Some(self.tree_s()) // latch-rank: 1
            } else {
                None
            };
            let holding_tree_s = tree_s_guard.is_some();
            let mut leaf = self.traverse(&search, true)?;
            // Figure 7: SM_Bit check.
            if leaf.page().sm_bit() {
                if holding_tree_s {
                    // Our own tree S latch covered the descent: no SMO could
                    // have moved the leaf's range since; safe to proceed.
                    leaf.as_x()?.set_sm_bit(false);
                } else if self.try_tree_s().is_some() { // latch-rank: 1 (conditional)
                    leaf.as_x()?.set_sm_bit(false);
                    // The set bit proves an SMO touched this page after our
                    // descent: the key may have been moved to a new right
                    // sibling, and `leaf_contains` on this page would report
                    // a spurious NotFound. The reset is kept (no SMO is in
                    // progress); the position must be recomputed.
                    drop(leaf);
                    continue;
                } else {
                    drop(leaf);
                    self.tree_instant_s(); // latch-rank: 1 (fresh)
                    continue;
                }
            }
            let page = leaf.page();
            let Some(idx) = leaf_contains(page, key)? else {
                tree_s_guard.take(); // release before any lock wait inside
                return self.delete_not_found(txn, leaf, key);
            };
            let n = page.slot_count();

            // Page would become empty: the Figure 8 path (tree X latch,
            // delete, then the page-deletion SMO). The root is exempt — it
            // may simply become an empty leaf.
            if n == 1 && page.page_id() != self.root {
                drop(leaf);
                tree_s_guard.take(); // about to take tree X: S would self-deadlock
                loop {
                    match self.delete_under_tree_x(txn, key)? {
                        DelStep::Done => return Ok(()),
                        DelStep::NotFound => return Err(Error::NotFound),
                        DelStep::WaitLock(name, mode, dur) => {
                            // Tree latch released by now; wait without latches.
                            self.locks.request(txn.id, name, mode, dur, false)?;
                        }
                    }
                }
            }

            // --- protocol-specific lock plan -------------------------------
            //
            // ARIES/IM (Figure 2): commit X on the *next key* (the stable
            // tripping point, §2.6); index-specific adds an instant X on the
            // current key. ARIES/KVL: commit X on the current key value;
            // commit X on the next value only when deleting the value's last
            // instance.
            let succ = successor_search(key);
            let (next_lock, _next_guard, next_eq) =
                match self.next_key_after(page, idx + 1, &succ)? {
                    NextKey::OnPage(k) => {
                        let eq = k.value == key.value;
                        (self.key_lock(&k), None, eq)
                    }
                    NextKey::OnNext(k, g) => {
                        let eq = k.value == key.value;
                        (self.key_lock(&k), Some(g), eq)
                    }
                    NextKey::Eof => (self.eof_lock(), None, false),
                    NextKey::Ambiguous => {
                        drop(leaf);
                        if !holding_tree_s {
                            self.tree_instant_s(); // latch-rank: 1 (fresh)
                        }
                        continue;
                    }
                };
            let plan = self.delete_lock_plan(key, &next_lock, next_eq, page, idx)?;
            let mut denied = None;
            for (name, mode, dur, is_next) in plan {
                if is_next {
                    self.stats.locks_next_key.bump();
                }
                match self.locks.request(txn.id, name.clone(), mode, dur, true) {
                    Ok(()) => {}
                    Err(Error::WouldBlock) => {
                        denied = Some((name, mode, dur));
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            if let Some((name, mode, dur)) = denied {
                drop(_next_guard);
                drop(leaf);
                tree_s_guard.take(); // §4: no latch held across a lock wait
                self.locks.request(txn.id, name, mode, dur, false)?;
                if holding_tree_s {
                    // We gave up the boundary-delete latch: retake it first.
                    need_tree_s = true;
                }
                continue;
            }
            drop(_next_guard);

            // --- boundary key: hold the S tree latch (Figure 7) --------------
            let _hold_to_end = tree_s_guard; // keep (if any) across the delete
            if (idx == 0 || idx == n - 1) && !holding_tree_s {
                match self.try_tree_s() { // latch-rank: 1 (conditional)
                    Some(g) => {
                        // Hold it across the delete below.
                        let _held = g;
                        return self.apply_delete(txn, leaf, key);
                    }
                    None => {
                        drop(leaf);
                        need_tree_s = true;
                        continue;
                    }
                }
            }

            return self.apply_delete(txn, leaf, key);
        }
    }

    /// The locks a delete must take before removing `key` at slot `idx` of
    /// `page` (see the comment at the call site for the per-protocol table).
    /// Tuple: (name, mode, duration, counts-as-next-key-lock).
    fn delete_lock_plan(
        &self,
        key: &IndexKey,
        next_lock: &LockName,
        next_eq: bool,
        page: &PageBuf,
        idx: u16,
    ) -> Result<Vec<(LockName, LockMode, LockDuration, bool)>> {
        let mut plan = Vec::new();
        match self.protocol {
            LockProtocol::DataOnly => {
                plan.push((next_lock.clone(), LockMode::X, LockDuration::Commit, true));
            }
            LockProtocol::IndexSpecific => {
                plan.push((next_lock.clone(), LockMode::X, LockDuration::Commit, true));
                plan.push((self.key_lock(key), LockMode::X, LockDuration::Instant, false));
            }
            LockProtocol::KeyValue => {
                plan.push((self.key_lock(key), LockMode::X, LockDuration::Commit, false));
                let dup_before = idx > 0 && leaf_key(page, idx - 1)?.value == key.value;
                let last_instance = !dup_before && !next_eq;
                if last_instance {
                    plan.push((next_lock.clone(), LockMode::X, LockDuration::Commit, true));
                }
            }
        }
        Ok(plan)
    }

    /// Log and apply the key delete on the latched leaf.
    fn apply_delete(&self, txn: &TxnHandle, mut leaf: LeafGuard, key: &IndexKey) -> Result<()> {
        let body = IndexBody::DeleteKey {
            index: self.index_id,
            key: key.clone(),
        };
        let g = leaf.as_x()?;
        let pid = g.page_id();
        crate::apply::apply_body(g, pid, &body)?;
        let lsn = txn.with_logger(&self.log, |l| l.update(RmId::Index, pid, body.encode()));
        g.record_update(lsn);
        Ok(())
    }

    /// Not-found path: S-lock the next key (or EOF) for commit duration so
    /// the absence is repeatable, then report NotFound.
    fn delete_not_found(&self, txn: &TxnHandle, leaf: LeafGuard, key: &IndexKey) -> Result<()> {
        let page = leaf.page();
        let idx = crate::node::leaf_lower_bound(page, &SearchKey::from_key(key))?;
        let succ = SearchKey::from_key(key);
        let (lock, _guard) = match self.next_key_after(page, idx, &succ)? {
            NextKey::OnPage(k) => (self.key_lock(&k), None),
            NextKey::OnNext(k, g) => (self.key_lock(&k), Some(g)),
            NextKey::Eof => (self.eof_lock(), None),
            NextKey::Ambiguous => {
                drop(leaf);
                self.tree_instant_s(); // latch-rank: 1 (fresh)
                // Simplest correct behaviour: report after one retry-free
                // lock of EOF is not possible; just re-run the delete.
                return self.delete(txn, key);
            }
        };
        match self
            .locks
            .request(txn.id, lock.clone(), LockMode::S, LockDuration::Commit, true)
        {
            Ok(()) => Err(Error::NotFound),
            Err(Error::WouldBlock) => {
                drop(_guard);
                drop(leaf);
                self.locks
                    .request(txn.id, lock, LockMode::S, LockDuration::Commit, false)?;
                // State may have changed (e.g. a rolled-back delete makes the
                // key reappear): retry the whole delete.
                self.delete(txn, key)
            }
            Err(e) => Err(e),
        }
    }

    /// Figure 8's delete flavour: under the X tree latch, re-descend, delete
    /// the key, and if the leaf is now empty run the page-deletion SMO.
    /// Conditional-lock denials bubble out as [`DelStep::WaitLock`] — per §4
    /// no lock is waited for while the tree latch is held.
    fn delete_under_tree_x(&self, txn: &TxnHandle, key: &IndexKey) -> Result<DelStep> {
        let _tx = self.tree_x(); // latch-rank: 1
        let search = SearchKey::from_key(key);
        let path = self.descend_path(&search)?;
        let leaf_id = crate::smo::path_leaf(&path)?;
        let mut g = self.pool.fix_x(leaf_id)?; // latch-rank: 2
        // We hold the tree latch: no SMO in progress; reset stale bits.
        g.set_sm_bit(false);
        let Some(idx) = leaf_contains(&g, key)? else {
            return Ok(DelStep::NotFound);
        };

        // Lock plan — conditional only under the tree latch (§4).
        let succ = successor_search(key);
        let (next_lock, _next_guard, next_eq) = match self.next_key_after(&g, idx + 1, &succ)? {
            NextKey::OnPage(k) => {
                let eq = k.value == key.value;
                (self.key_lock(&k), None, eq)
            }
            NextKey::OnNext(k, ng) => {
                let eq = k.value == key.value;
                (self.key_lock(&k), Some(ng), eq)
            }
            NextKey::Eof => (self.eof_lock(), None, false),
            NextKey::Ambiguous => {
                return Err(Error::CorruptPage {
                    page: leaf_id,
                    reason: "empty neighbour under tree latch".into(),
                })
            }
        };
        let plan = self.delete_lock_plan(key, &next_lock, next_eq, &g, idx)?;
        for (name, mode, dur, is_next) in plan {
            if is_next {
                self.stats.locks_next_key.bump();
            }
            match self.locks.request(txn.id, name.clone(), mode, dur, true) {
                Ok(()) => {}
                Err(Error::WouldBlock) => return Ok(DelStep::WaitLock(name, mode, dur)),
                Err(e) => return Err(e),
            }
        }
        drop(_next_guard);

        // Key delete, logged normally (outside the SMO's nested top action —
        // Figure 10's ordering).
        txn.with_logger(&self.log, |logger| -> Result<()> {
            let body = IndexBody::DeleteKey {
                index: self.index_id,
                key: key.clone(),
            };
            crate::apply::apply_body(&mut g, leaf_id, &body)?;
            let lsn = logger.update(RmId::Index, leaf_id, body.encode());
            g.record_update(lsn);
            ariesim_fault::crash_point!("btree.delete.key_logged");
            let now_empty = g.slot_count() == 0;
            drop(g);
            if now_empty {
                // The dummy CLR will point at the key-delete record just
                // written (logger.last_lsn), exactly as Figure 10 shows.
                self.page_delete_smo(logger, &search)?;
            }
            Ok(())
        })?;
        Ok(DelStep::Done)
    }
}
