//! Log-record bodies owned by the index resource manager.
//!
//! Every body affects exactly the page named in the record envelope, so the
//! redo pass can replay any of them without looking at another page — the
//! paper's §3 guarantee that "any required redos are performed in a
//! page-oriented manner". SMO bodies carry enough of the before-state to be
//! *undone* page-oriented too, which is how partially completed SMOs are
//! rolled back to restore structural consistency.

use crate::node::{decode_cells_blob, encode_cells_blob, NodeCell};
use ariesim_common::codec::{Reader, Writer};
use ariesim_common::{Error, IndexId, IndexKey, PageId, Result};

/// An index log-record body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IndexBody {
    /// Key inserted into a leaf. Undo: delete it (possibly logically).
    InsertKey { index: IndexId, key: IndexKey },
    /// Key deleted from a leaf; redo also sets the Delete_Bit (paper Fig 7).
    /// Undo: re-insert it (possibly logically).
    DeleteKey { index: IndexId, key: IndexKey },
    /// Page formatted as an index page with the given cells (split target,
    /// root-grow child, index creation).
    PageFormat {
        index: IndexId,
        level: u16,
        cells: Vec<Vec<u8>>,
        prev: PageId,
        next: PageId,
        sm_bit: bool,
    },
    /// Split: the upper cells moved out of this page; `next` rechained.
    SplitShrink {
        index: IndexId,
        /// Raw cells removed from the tail of the page (they went to the new
        /// right sibling). Kept whole so an incomplete SMO can be undone.
        removed: Vec<Vec<u8>>,
        old_next: PageId,
        new_next: PageId,
        /// Nonleaf splits only: the high key surrendered by the page's new
        /// rightmost cell (it becomes the separator posted to the parent).
        dropped_high: Option<IndexKey>,
    },
    /// Neighbor rechaining during an SMO: this page's `next` pointer.
    ChainNext { old: PageId, new: PageId },
    /// Neighbor rechaining during an SMO: this page's `prev` pointer.
    ChainPrev { old: PageId, new: PageId },
    /// Split posted to the parent: cell at `slot` (pointing at the split
    /// page) gets `sep` as its high key, and a new cell for `new_child`
    /// inherits the old high key at `slot + 1`.
    AddSeparator {
        index: IndexId,
        slot: u16,
        sep: IndexKey,
        new_child: PageId,
    },
    /// Page deletion posted to the parent: the cell at `slot` (pointing at
    /// `child`) is removed. If `child` was the rightmost (no high key), the
    /// new rightmost cell surrenders its high key `dropped_high`.
    RemoveSeparator {
        index: IndexId,
        slot: u16,
        child: PageId,
        old_high: Option<IndexKey>,
        dropped_high: Option<IndexKey>,
    },
    /// Page deletion: this (empty) page leaves the tree.
    FreePage {
        index: IndexId,
        level: u16,
        prev: PageId,
        next: PageId,
    },
    /// Root grew a level: its cells moved into `child`; the root became a
    /// nonleaf one level up with `child` as its only (rightmost) cell.
    RootReplace {
        index: IndexId,
        old_level: u16,
        new_level: u16,
        child: PageId,
        old_cells: Vec<Vec<u8>>,
    },
    /// Root (a nonleaf left with zero children after a page deletion)
    /// reformatted as an empty leaf.
    RootCollapse {
        index: IndexId,
        old_level: u16,
        old_cells: Vec<Vec<u8>>,
    },
    /// Physical page-state restore: the CLR body written when an incomplete
    /// SMO's record is undone. Redo reconstructs the whole page, making the
    /// compensation page-oriented regardless of what the SMO record did.
    PageRestore {
        index: IndexId,
        level: u16,
        free: bool,
        prev: PageId,
        next: PageId,
        sm_bit: bool,
        delete_bit: bool,
        cells: Vec<Vec<u8>>,
    },
}

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_FORMAT: u8 = 3;
const OP_SHRINK: u8 = 4;
const OP_CHAIN_NEXT: u8 = 5;
const OP_CHAIN_PREV: u8 = 6;
const OP_ADD_SEP: u8 = 7;
const OP_RM_SEP: u8 = 8;
const OP_FREE: u8 = 9;
const OP_ROOT_REPLACE: u8 = 10;
const OP_ROOT_COLLAPSE: u8 = 11;
const OP_RESTORE: u8 = 12;

fn put_opt_key(w: &mut Writer, k: &Option<IndexKey>) {
    w.u8(k.is_some() as u8);
    if let Some(k) = k {
        k.encode_into(w);
    }
}

fn get_opt_key(r: &mut Reader<'_>) -> Result<Option<IndexKey>> {
    if r.u8()? != 0 {
        Ok(Some(IndexKey::decode_from(r)?))
    } else {
        Ok(None)
    }
}

impl IndexBody {
    /// The index this body belongs to (used by logical undo to find the
    /// right tree).
    pub fn index(&self) -> IndexId {
        match self {
            IndexBody::InsertKey { index, .. }
            | IndexBody::DeleteKey { index, .. }
            | IndexBody::PageFormat { index, .. }
            | IndexBody::SplitShrink { index, .. }
            | IndexBody::AddSeparator { index, .. }
            | IndexBody::RemoveSeparator { index, .. }
            | IndexBody::FreePage { index, .. }
            | IndexBody::RootReplace { index, .. }
            | IndexBody::RootCollapse { index, .. }
            | IndexBody::PageRestore { index, .. } => *index,
            // Chain updates don't carry the id (their undo never needs the
            // tree — always page-oriented).
            IndexBody::ChainNext { .. } | IndexBody::ChainPrev { .. } => IndexId(u32::MAX),
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            IndexBody::InsertKey { index, key } => {
                w.u8(OP_INSERT).index_id(*index);
                key.encode_into(&mut w);
            }
            IndexBody::DeleteKey { index, key } => {
                w.u8(OP_DELETE).index_id(*index);
                key.encode_into(&mut w);
            }
            IndexBody::PageFormat {
                index,
                level,
                cells,
                prev,
                next,
                sm_bit,
            } => {
                w.u8(OP_FORMAT)
                    .index_id(*index)
                    .u16(*level)
                    .page_id(*prev)
                    .page_id(*next)
                    .u8(*sm_bit as u8)
                    .raw(&encode_cells_blob(cells));
            }
            IndexBody::SplitShrink {
                index,
                removed,
                old_next,
                new_next,
                dropped_high,
            } => {
                w.u8(OP_SHRINK)
                    .index_id(*index)
                    .page_id(*old_next)
                    .page_id(*new_next);
                put_opt_key(&mut w, dropped_high);
                w.raw(&encode_cells_blob(removed));
            }
            IndexBody::ChainNext { old, new } => {
                w.u8(OP_CHAIN_NEXT).page_id(*old).page_id(*new);
            }
            IndexBody::ChainPrev { old, new } => {
                w.u8(OP_CHAIN_PREV).page_id(*old).page_id(*new);
            }
            IndexBody::AddSeparator {
                index,
                slot,
                sep,
                new_child,
            } => {
                w.u8(OP_ADD_SEP)
                    .index_id(*index)
                    .u16(*slot)
                    .page_id(*new_child);
                sep.encode_into(&mut w);
            }
            IndexBody::RemoveSeparator {
                index,
                slot,
                child,
                old_high,
                dropped_high,
            } => {
                w.u8(OP_RM_SEP).index_id(*index).u16(*slot).page_id(*child);
                put_opt_key(&mut w, old_high);
                put_opt_key(&mut w, dropped_high);
            }
            IndexBody::FreePage {
                index,
                level,
                prev,
                next,
            } => {
                w.u8(OP_FREE)
                    .index_id(*index)
                    .u16(*level)
                    .page_id(*prev)
                    .page_id(*next);
            }
            IndexBody::RootReplace {
                index,
                old_level,
                new_level,
                child,
                old_cells,
            } => {
                w.u8(OP_ROOT_REPLACE)
                    .index_id(*index)
                    .u16(*old_level)
                    .u16(*new_level)
                    .page_id(*child)
                    .raw(&encode_cells_blob(old_cells));
            }
            IndexBody::RootCollapse {
                index,
                old_level,
                old_cells,
            } => {
                w.u8(OP_ROOT_COLLAPSE)
                    .index_id(*index)
                    .u16(*old_level)
                    .raw(&encode_cells_blob(old_cells));
            }
            IndexBody::PageRestore {
                index,
                level,
                free,
                prev,
                next,
                sm_bit,
                delete_bit,
                cells,
            } => {
                w.u8(OP_RESTORE)
                    .index_id(*index)
                    .u16(*level)
                    .u8(*free as u8)
                    .page_id(*prev)
                    .page_id(*next)
                    .u8(*sm_bit as u8)
                    .u8(*delete_bit as u8)
                    .raw(&encode_cells_blob(cells));
            }
        }
        w.into_vec()
    }

    pub fn decode(buf: &[u8]) -> Result<IndexBody> {
        let mut r = Reader::new(buf);
        let op = r.u8()?;
        Ok(match op {
            OP_INSERT => IndexBody::InsertKey {
                index: r.index_id()?,
                key: IndexKey::decode_from(&mut r)?,
            },
            OP_DELETE => IndexBody::DeleteKey {
                index: r.index_id()?,
                key: IndexKey::decode_from(&mut r)?,
            },
            OP_FORMAT => IndexBody::PageFormat {
                index: r.index_id()?,
                level: r.u16()?,
                prev: r.page_id()?,
                next: r.page_id()?,
                sm_bit: r.u8()? != 0,
                cells: decode_cells_blob(r.rest())?,
            },
            OP_SHRINK => IndexBody::SplitShrink {
                index: r.index_id()?,
                old_next: r.page_id()?,
                new_next: r.page_id()?,
                dropped_high: get_opt_key(&mut r)?,
                removed: decode_cells_blob(r.rest())?,
            },
            OP_CHAIN_NEXT => IndexBody::ChainNext {
                old: r.page_id()?,
                new: r.page_id()?,
            },
            OP_CHAIN_PREV => IndexBody::ChainPrev {
                old: r.page_id()?,
                new: r.page_id()?,
            },
            OP_ADD_SEP => IndexBody::AddSeparator {
                index: r.index_id()?,
                slot: r.u16()?,
                new_child: r.page_id()?,
                sep: IndexKey::decode_from(&mut r)?,
            },
            OP_RM_SEP => IndexBody::RemoveSeparator {
                index: r.index_id()?,
                slot: r.u16()?,
                child: r.page_id()?,
                old_high: get_opt_key(&mut r)?,
                dropped_high: get_opt_key(&mut r)?,
            },
            OP_FREE => IndexBody::FreePage {
                index: r.index_id()?,
                level: r.u16()?,
                prev: r.page_id()?,
                next: r.page_id()?,
            },
            OP_ROOT_REPLACE => IndexBody::RootReplace {
                index: r.index_id()?,
                old_level: r.u16()?,
                new_level: r.u16()?,
                child: r.page_id()?,
                old_cells: decode_cells_blob(r.rest())?,
            },
            OP_ROOT_COLLAPSE => IndexBody::RootCollapse {
                index: r.index_id()?,
                old_level: r.u16()?,
                old_cells: decode_cells_blob(r.rest())?,
            },
            OP_RESTORE => IndexBody::PageRestore {
                index: r.index_id()?,
                level: r.u16()?,
                free: r.u8()? != 0,
                prev: r.page_id()?,
                next: r.page_id()?,
                sm_bit: r.u8()? != 0,
                delete_bit: r.u8()? != 0,
                cells: decode_cells_blob(r.rest())?,
            },
            other => return Err(Error::Internal(format!("bad index body op {other}"))),
        })
    }
}

/// Convenience: decode a nonleaf cell blob into typed cells.
pub fn decode_node_cells(raw: &[Vec<u8>]) -> Result<Vec<NodeCell>> {
    raw.iter().map(|c| NodeCell::decode(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariesim_common::Rid;

    fn key(v: &str) -> IndexKey {
        IndexKey::new(v.as_bytes().to_vec(), Rid::new(PageId(9), 1))
    }

    #[test]
    fn roundtrip_every_variant() {
        let cases = vec![
            IndexBody::InsertKey {
                index: IndexId(1),
                key: key("a"),
            },
            IndexBody::DeleteKey {
                index: IndexId(1),
                key: key("b"),
            },
            IndexBody::PageFormat {
                index: IndexId(2),
                level: 3,
                cells: vec![key("x").encode(), key("y").encode()],
                prev: PageId(4),
                next: PageId::NULL,
                sm_bit: true,
            },
            IndexBody::SplitShrink {
                index: IndexId(1),
                removed: vec![key("m").encode()],
                old_next: PageId::NULL,
                new_next: PageId(8),
                dropped_high: Some(key("h")),
            },
            IndexBody::ChainNext {
                old: PageId(1),
                new: PageId(2),
            },
            IndexBody::ChainPrev {
                old: PageId(3),
                new: PageId(4),
            },
            IndexBody::AddSeparator {
                index: IndexId(1),
                slot: 2,
                sep: key("sep"),
                new_child: PageId(12),
            },
            IndexBody::RemoveSeparator {
                index: IndexId(1),
                slot: 0,
                child: PageId(5),
                old_high: Some(key("h")),
                dropped_high: None,
            },
            IndexBody::RemoveSeparator {
                index: IndexId(1),
                slot: 3,
                child: PageId(5),
                old_high: None,
                dropped_high: Some(key("d")),
            },
            IndexBody::FreePage {
                index: IndexId(1),
                level: 0,
                prev: PageId(1),
                next: PageId(2),
            },
            IndexBody::RootReplace {
                index: IndexId(1),
                old_level: 0,
                new_level: 1,
                child: PageId(7),
                old_cells: vec![key("r").encode()],
            },
            IndexBody::RootCollapse {
                index: IndexId(1),
                old_level: 1,
                old_cells: vec![],
            },
            IndexBody::PageRestore {
                index: IndexId(3),
                level: 0,
                free: false,
                prev: PageId(1),
                next: PageId(2),
                sm_bit: true,
                delete_bit: true,
                cells: vec![key("a").encode()],
            },
        ];
        for c in cases {
            assert_eq!(IndexBody::decode(&c.encode()).unwrap(), c, "{c:?}");
        }
    }

    #[test]
    fn bad_op_is_error() {
        assert!(IndexBody::decode(&[0xEE]).is_err());
        assert!(IndexBody::decode(&[]).is_err());
    }

    #[test]
    fn index_extraction() {
        let b = IndexBody::InsertKey {
            index: IndexId(42),
            key: key("z"),
        };
        assert_eq!(b.index(), IndexId(42));
    }
}
