//! Key insert — the paper's §2.4 and Figure 6, with the split path of
//! Figure 8/9.
//!
//! Protocol summary:
//!
//! * If the leaf's SM_Bit or Delete_Bit is '1', first ensure no SMO is in
//!   progress (instant S tree latch — a POSC), then reset the bits. This is
//!   the Figure 11 precaution: the insert may be about to consume space an
//!   uncommitted delete freed, and that delete's undo must never face a
//!   structurally inconsistent tree.
//! * In a unique index, an equal key value already present triggers a
//!   **commit-duration S lock** on the found key so the unique-violation
//!   error is repeatable (§2.4).
//! * Otherwise the **next key** is locked X for **instant** duration — the
//!   check that no concurrent transaction has fetched-and-not-found this
//!   value (phantom protection) and, in a unique index, that no uncommitted
//!   delete of the value exists. The inserted key itself becomes the
//!   tripping point afterwards, which is why instant duration suffices
//!   (§2.6).
//! * All locks are requested **conditionally while latches are held**; on
//!   denial every latch is released, the lock is waited for unconditionally,
//!   and the operation re-traverses (§2.2).
//! * If the leaf is full, the split SMO runs first and the insert is
//!   performed after the SMO completes, under the tree latch (Figure 8) —
//!   so a rollback undoes the insert but never the split.

use crate::fetch::NextKey;
use crate::node::{leaf_key, leaf_lower_bound};
use crate::traverse::LeafGuard;
use crate::{BTree, LockProtocol, MAX_KEY_VALUE_LEN};
use ariesim_common::key::SearchKey;
use ariesim_common::slotted::SLOT_LEN;
use ariesim_common::stats::Bump;
use ariesim_common::{Error, IndexKey, Result};
use ariesim_lock::{LockDuration, LockMode, LockName};

use ariesim_txn::TxnHandle;
use ariesim_wal::RmId;

/// Outcome of one attempt at the leaf-level insert action.
enum Step {
    Done,
    /// Latches released; a lock was waited for unconditionally; re-traverse.
    Retry,
    /// Latches released; the caller must drop the tree latch, wait for the
    /// named lock unconditionally, and re-traverse (§4: no lock is ever
    /// waited for while holding the tree latch).
    WaitLock(LockName, LockMode, LockDuration),
    /// Leaf cannot hold the key: run the split SMO.
    NeedSplit,
    UniqueViolation,
}

impl BTree {
    /// Insert `key`. Returns [`Error::UniqueViolation`] for a duplicate key
    /// value in a unique index.
    pub fn insert(&self, txn: &TxnHandle, key: &IndexKey) -> Result<()> {
        let op = self.obs.timer();
        let r = self.insert_inner(txn, key);
        self.obs.hist.op_insert.record_since(op);
        r
    }

    fn insert_inner(&self, txn: &TxnHandle, key: &IndexKey) -> Result<()> {
        if key.value.len() > MAX_KEY_VALUE_LEN {
            return Err(Error::TooLarge {
                len: key.value.len(),
                max: MAX_KEY_VALUE_LEN,
            });
        }
        self.stats.index_inserts.bump();
        // Unique indexes search by value (duplicates must be found wherever
        // their RID would sort them); nonunique search with the whole key
        // (§1.1 / §2.4).
        let search = if self.unique {
            SearchKey::value_only(&key.value)
        } else {
            SearchKey::from_key(key)
        };
        loop {
            let leaf = self.traverse(&search, true)?;
            match self.insert_action(txn, leaf, key, false)? {
                Step::Done => return Ok(()),
                Step::Retry => continue,
                Step::WaitLock(name, mode, dur) => {
                    self.locks.request(txn.id, name, mode, dur, false)?;
                    continue;
                }
                Step::UniqueViolation => return Err(Error::UniqueViolation),
                Step::NeedSplit => {
                    // Figure 8: split first, insert after, all under the X
                    // tree latch.
                    let tree_guard = self.tree_x(); // latch-rank: 1
                    let leaf_id = txn.with_logger(&self.log, |logger| {
                        self.split_smo(logger, &search, key.wire_len())
                    })?;
                    let leaf = LeafGuard::X(self.pool.fix_x(leaf_id)?); // latch-rank: 2
                    match self.insert_action(txn, leaf, key, true)? {
                        Step::Done => return Ok(()),
                        Step::Retry => {
                            drop(tree_guard);
                            continue;
                        }
                        // A denied conditional lock: per §4 the wait happens
                        // only after the tree latch is released.
                        Step::WaitLock(name, mode, dur) => {
                            drop(tree_guard);
                            self.locks.request(txn.id, name, mode, dur, false)?;
                            continue;
                        }
                        Step::UniqueViolation => return Err(Error::UniqueViolation),
                        // Another transaction filled the page before we
                        // re-latched it; start over (and split again).
                        Step::NeedSplit => {
                            drop(tree_guard);
                            continue;
                        }
                    }
                }
            }
        }
    }

    /// The Figure 6 action routine, on an X-latched leaf. Consumes the
    /// guard; on [`Step::Retry`] all latches have been released and any
    /// needed unconditional lock wait has already happened.
    fn insert_action(
        &self,
        txn: &TxnHandle,
        mut leaf: LeafGuard,
        key: &IndexKey,
        under_tree_latch: bool,
    ) -> Result<Step> {
        // --- SM_Bit | Delete_Bit check (Figure 6 first line) -----------
        if leaf.page().sm_bit() || leaf.page().delete_bit() {
            if under_tree_latch {
                // We *are* the SMO serializer right now: safe to reset.
                let g = leaf.as_x()?;
                g.set_sm_bit(false);
                g.set_delete_bit(false);
            } else if self.try_tree_s().is_some() { // latch-rank: 1 (conditional)
                // Instant S tree latch granted: no SMO in progress; a POSC
                // exists. Reset the bits (an unlogged hint — see DESIGN.md).
                self.stats.latches_tree_instant.bump();
                let g = leaf.as_x()?;
                g.set_sm_bit(false);
                g.set_delete_bit(false);
                // The set bit proves an SMO touched this page after our
                // descent read the parent's separators: the split may have
                // moved this key's range to a new right sibling between the
                // parent latch release and our leaf latch grant, and
                // inserting here would put the key beyond the parent's high
                // key. The reset is kept (it is correct — no SMO is in
                // progress), but the position must be recomputed.
                drop(leaf);
                return Ok(Step::Retry);
            } else {
                // SMO in progress: wait for it without holding latches.
                drop(leaf);
                self.tree_instant_s(); // latch-rank: 1 (fresh)
                return Ok(Step::Retry);
            }
        }

        let page = leaf.page();
        // Unique indexes position by *value*: an equal value physically
        // present (e.g. an uncommitted delete, §2.4) must be found no matter
        // how its RID orders against ours. Nonunique indexes position by the
        // full key.
        let idx = if self.unique {
            leaf_lower_bound(page, &SearchKey::value_only(&key.value))?
        } else {
            leaf_lower_bound(page, &SearchKey::from_key(key))?
        };
        if idx < page.slot_count() && leaf_key(page, idx)? == *key {
            return Err(Error::Internal(format!(
                "insert of key already present: {key:?}"
            )));
        }

        // --- next key (walking right if needed) ---------------------------
        let walk_search = if self.unique {
            SearchKey::value_only(&key.value)
        } else {
            SearchKey::from_key(key)
        };
        let (next_lock, _next_guard, next_is_equal_value) =
            match self.next_key_after(page, idx, &walk_search)? {
                NextKey::OnPage(k) => {
                    let eq = k.value == key.value;
                    (self.key_lock(&k), None, eq)
                }
                NextKey::OnNext(k, g) => {
                    let eq = k.value == key.value;
                    (self.key_lock(&k), Some(g), eq)
                }
                NextKey::Eof => (self.eof_lock(), None, false),
                NextKey::Ambiguous => {
                    drop(leaf);
                    // Holding the X tree latch, an instant S would
                    // self-deadlock; the caller drops the latch on Retry.
                    if !under_tree_latch {
                        self.tree_instant_s(); // latch-rank: 1 (fresh)
                    }
                    return Ok(Step::Retry);
                }
            };

        // --- unique check (§2.4) ------------------------------------------
        if self.unique && next_is_equal_value {
            // The "found key" is the next key with our value. Commit-duration
            // S lock makes the violation repeatable.
            match self.locks.request(
                txn.id,
                next_lock.clone(),
                LockMode::S,
                LockDuration::Commit,
                true,
            ) {
                Ok(()) => return Ok(Step::UniqueViolation),
                Err(Error::WouldBlock) => {
                    drop(_next_guard);
                    drop(leaf);
                    if under_tree_latch {
                        return Ok(Step::WaitLock(
                            next_lock,
                            LockMode::S,
                            LockDuration::Commit,
                        ));
                    }
                    self.locks.request(
                        txn.id,
                        next_lock,
                        LockMode::S,
                        LockDuration::Commit,
                        false,
                    )?;
                    // The state may have changed while unlatched (e.g. the
                    // deleter of that key value rolled back or committed):
                    // re-traverse and re-decide.
                    return Ok(Step::Retry);
                }
                Err(e) => return Err(e),
            }
        }

        // --- protocol-specific lock plan -----------------------------------
        //
        // ARIES/IM (Figure 2): instant X on the *next key*; under data-only
        // locking the current key needs no index lock (the record manager's
        // RID lock covers it); index-specific locking adds a commit X on the
        // current key.
        //
        // ARIES/KVL baseline [Moha90a]: commit IX on the current key *value*
        // always; the instant X next-value lock is needed only when the
        // value does not yet exist in the index (inserting a duplicate of an
        // existing value is covered by the value's own lock).
        let value_exists = next_is_equal_value
            || (idx > 0 && leaf_key(leaf.page(), idx - 1)?.value == key.value);
        let mut plan: Vec<(LockName, LockMode, LockDuration, bool)> = Vec::new();
        match self.protocol {
            LockProtocol::DataOnly => {
                plan.push((next_lock.clone(), LockMode::X, LockDuration::Instant, true));
            }
            LockProtocol::IndexSpecific => {
                plan.push((next_lock.clone(), LockMode::X, LockDuration::Instant, true));
                plan.push((self.key_lock(key), LockMode::X, LockDuration::Commit, false));
            }
            LockProtocol::KeyValue => {
                plan.push((self.key_lock(key), LockMode::IX, LockDuration::Commit, false));
                if !value_exists {
                    plan.push((next_lock.clone(), LockMode::X, LockDuration::Instant, true));
                }
            }
        }
        for (name, mode, dur, is_next) in plan {
            if is_next {
                self.stats.locks_next_key.bump();
            }
            match self.locks.request(txn.id, name.clone(), mode, dur, true) {
                Ok(()) => {}
                Err(Error::WouldBlock) => {
                    drop(_next_guard);
                    drop(leaf);
                    if under_tree_latch {
                        return Ok(Step::WaitLock(name, mode, dur));
                    }
                    self.locks.request(txn.id, name, mode, dur, false)?;
                    return Ok(Step::Retry);
                }
                Err(e) => return Err(e),
            }
        }
        drop(_next_guard);

        // --- the insert itself -----------------------------------------------
        let page = leaf.page();
        if page.total_free() < key.wire_len() + SLOT_LEN {
            return Ok(Step::NeedSplit);
        }
        let body = crate::body::IndexBody::InsertKey {
            index: self.index_id,
            key: key.clone(),
        };
        let g = leaf.as_x()?;
        let pid = g.page_id();
        crate::apply::apply_body(g, pid, &body)?;
        let lsn = txn.with_logger(&self.log, |l| l.update(RmId::Index, pid, body.encode()));
        g.record_update(lsn);
        ariesim_fault::crash_point!("btree.insert.key_logged");
        Ok(Step::Done)
    }

    /// Current-key lock name helper exposed for the KVL baseline and tests.
    pub fn key_lock_name(&self, key: &IndexKey) -> LockName {
        self.key_lock(key)
    }

    /// EOF lock name helper for tests.
    pub fn eof_lock_name(&self) -> LockName {
        self.eof_lock()
    }
}
