//! Structure modification operations — the paper's Figures 8, 9 and 10.
//!
//! Both SMOs (page split and page deletion) run under the **X tree latch**
//! (§2.1: "SMOs within a single index tree are serialized using an X tree
//! latch") and are bracketed as **nested top actions**: every page-level
//! action is a regular redo-undo record, and a dummy CLR at the end makes
//! the whole SMO survive a rollback of the enclosing transaction (§3).
//!
//! Discipline enforced here (paper §4):
//!
//! * at most two page latches held at once, and never a lower-level latch
//!   while *waiting* for a higher-level one — propagation latches the parent
//!   only after the leaf-level latches are released;
//! * splits go to the **right**: higher-valued keys move to the new page;
//! * every page touched by the SMO has its SM_Bit set to '1' (done inside
//!   each body's apply), warning concurrent traversers;
//! * no I/O while holding the tree latch beyond the buffer-pool page
//!   fixes themselves (the paper asks callers to pre-fix pages; our pool
//!   makes fixes cheap, so the latch hold time stays short either way).
//!
//! The same functions serve SMOs needed *during undo* (paper §3's exception:
//! those are logged as regular records, which these are) — the caller just
//! passes the rollback's [`ChainLogger`].

use crate::apply::apply_body;
use crate::body::IndexBody;
use crate::node::{node_cell, node_find_child, node_search, raw_cells, NodeCell};
use crate::BTree;
use ariesim_fault::crash_point;
use ariesim_obs::{EventKind, ModeTag};
use ariesim_common::key::SearchKey;
use ariesim_common::slotted::SLOT_LEN;
use ariesim_common::stats::Bump;
use ariesim_common::{Error, IndexKey, PageId, Result};
use ariesim_wal::{ChainLogger, RmId};

impl BTree {
    /// Root-to-leaf descent recording the page ids on the way. Must be
    /// called with the tree latch held (no SMO can change the structure, so
    /// no ambiguity handling is needed).
    pub(crate) fn descend_path(&self, search: &SearchKey<'_>) -> Result<Vec<PageId>> {
        let mut path = vec![self.root];
        let mut g = self.pool.fix_s(self.root)?; // latch-rank: 2
        while g.level() > 0 {
            let (_, child) = node_search(&g, search)?;
            let cg = self.pool.fix_s(child)?; // latch-rank: 2
            drop(g);
            g = cg;
            path.push(child);
        }
        Ok(path)
    }

    /// Fix `page` exclusive, apply `body`, log it, stamp the page LSN.
    fn smo_action(&self, logger: &mut ChainLogger<'_>, page: PageId, body: IndexBody) -> Result<()> {
        let mut g = self.pool.fix_x(page)?; // latch-rank: 2
        apply_body(&mut g, page, &body)?;
        let lsn = logger.update(RmId::Index, page, body.encode());
        g.record_update(lsn);
        Ok(())
    }

    /// Grow the tree by one level: the root's cells move into a fresh child;
    /// the root becomes a nonleaf one level higher whose only child is it.
    /// Returns the new child holding the old content.
    fn root_grow(&self, logger: &mut ChainLogger<'_>) -> Result<PageId> {
        let mut g = self.pool.fix_x(self.root)?; // latch-rank: 2
        let cells = raw_cells(&g)?;
        let level = g.level();
        let child = self.space.allocate(logger)?;
        {
            let mut cg = self.pool.fix_x(child)?; // latch-rank: 2
            let body = IndexBody::PageFormat {
                index: self.index_id,
                level,
                cells: cells.clone(),
                prev: PageId::NULL,
                next: PageId::NULL,
                sm_bit: true,
            };
            apply_body(&mut cg, child, &body)?;
            let lsn = logger.update(RmId::Index, child, body.encode());
            cg.record_update(lsn);
        }
        crash_point!("smo.grow.child_formatted");
        let body = IndexBody::RootReplace {
            index: self.index_id,
            old_level: level,
            new_level: level + 1,
            child,
            old_cells: cells,
        };
        apply_body(&mut g, self.root, &body)?;
        let lsn = logger.update(RmId::Index, self.root, body.encode());
        g.record_update(lsn);
        crash_point!("smo.grow.root_replaced");
        Ok(child)
    }

    /// Split `path[idx]` around its byte midpoint (higher keys to the new
    /// right page) and post the separator to the parent, splitting ancestors
    /// as needed. Returns the new right sibling. Caller holds the X tree
    /// latch; the dummy CLR is the caller's responsibility.
    fn split_one(&self, logger: &mut ChainLogger<'_>, path: &mut Vec<PageId>, mut idx: usize) -> Result<PageId> {
        if idx == 0 {
            // Splitting the root: grow first, then split the new child.
            let child = self.root_grow(logger)?;
            path.insert(1, child);
            idx = 1;
        }
        let target = path[idx];
        let mut g = self.pool.fix_x(target)?; // latch-rank: 2
        let cells = raw_cells(&g)?;
        if cells.len() < 2 {
            return Err(Error::Internal(format!(
                "split of {target} with {} cells",
                cells.len()
            )));
        }
        // Byte-midpoint split index, clamped to leave both sides nonempty.
        let total: usize = cells.iter().map(|c| c.len() + SLOT_LEN).sum();
        let mut acc = 0usize;
        let mut split_idx = cells.len() - 1;
        for (i, c) in cells.iter().enumerate() {
            acc += c.len() + SLOT_LEN;
            if acc * 2 >= total {
                split_idx = (i + 1).clamp(1, cells.len() - 1);
                break;
            }
        }
        let upper: Vec<Vec<u8>> = cells[split_idx..].to_vec();
        let is_leaf = g.level() == 0;
        let level = g.level();
        let old_next = g.next();
        let (sep, dropped_high) = if is_leaf {
            (IndexKey::decode(&upper[0])?, None)
        } else {
            let last_kept = NodeCell::decode(&cells[split_idx - 1])?;
            let h = last_kept.high_key.ok_or_else(|| Error::CorruptPage {
                page: target,
                reason: "nonleaf split: kept rightmost cell has no high key".into(),
            })?;
            (h.clone(), Some(h))
        };
        // Allocate and format the new right page (two latches held: target + new).
        let new_page = self.space.allocate(logger)?;
        crash_point!("smo.split.allocated");
        {
            let mut ng = self.pool.fix_x(new_page)?; // latch-rank: 2
            let body = IndexBody::PageFormat {
                index: self.index_id,
                level,
                cells: upper.clone(),
                prev: if is_leaf { target } else { PageId::NULL },
                next: if is_leaf { old_next } else { PageId::NULL },
                sm_bit: true,
            };
            apply_body(&mut ng, new_page, &body)?;
            let lsn = logger.update(RmId::Index, new_page, body.encode());
            ng.record_update(lsn);
        }
        crash_point!("smo.split.new_formatted");
        // Shrink the split page.
        {
            let body = IndexBody::SplitShrink {
                index: self.index_id,
                removed: upper,
                old_next,
                new_next: if is_leaf { new_page } else { PageId::NULL },
                dropped_high,
            };
            apply_body(&mut g, target, &body)?;
            let lsn = logger.update(RmId::Index, target, body.encode());
            g.record_update(lsn);
        }
        drop(g);
        crash_point!("smo.split.shrunk");
        // Rechain the old right neighbour (leaf level only; leaf latches are
        // released before any higher-level latch is requested — §4).
        if is_leaf && !old_next.is_null() {
            self.smo_action(
                logger,
                old_next,
                IndexBody::ChainPrev {
                    old: target,
                    new: new_page,
                },
            )?;
            crash_point!("smo.split.rechained");
        }
        self.stats.smo_splits.bump();
        self.post_separator(logger, path, idx - 1, target, sep, new_page)?;
        crash_point!("smo.split.sep_posted");
        Ok(new_page)
    }

    /// Post the separator `(left, sep, right)` into the nonleaf `path[idx]`,
    /// splitting it (and its ancestors) if it is full.
    fn post_separator(
        &self,
        logger: &mut ChainLogger<'_>,
        path: &mut Vec<PageId>,
        idx: usize,
        left: PageId,
        sep: IndexKey,
        right: PageId,
    ) -> Result<()> {
        loop {
            let pa = path[idx];
            let mut g = self.pool.fix_x(pa)?; // latch-rank: 2
            let slot = node_find_child(&g, left)?;
            // Worst-case growth: the replaced cell grows by sep's bytes and
            // one new cell (≈ the old cell's size) plus a slot is added.
            let old_cell_len = g.cell(slot).map(|c| c.len()).unwrap_or(0);
            let need = sep.wire_len() + old_cell_len + 2 * SLOT_LEN + 8;
            if g.total_free() >= need {
                let body = IndexBody::AddSeparator {
                    index: self.index_id,
                    slot,
                    sep,
                    new_child: right,
                };
                apply_body(&mut g, pa, &body)?;
                let lsn = logger.update(RmId::Index, pa, body.encode());
                g.record_update(lsn);
                crash_point!("smo.post.sep_added");
                return Ok(());
            }
            drop(g);
            // Parent full: split it first (posts its own separator upward),
            // then figure out which half now parents `left`.
            let sibling = self.split_one(logger, path, idx)?;
            let pa = path[idx];
            let g = self.pool.fix_s(pa)?; // latch-rank: 2 (fresh)
            let in_left = node_find_child(&g, left).is_ok();
            drop(g);
            if !in_left {
                path[idx] = sibling;
            }
        }
    }

    /// Figure 8/9: the page-split SMO. Caller holds the X tree latch.
    /// Re-descends for `search`; if the leaf cannot fit `need` more bytes,
    /// splits it (propagating up) inside a nested top action. Returns the
    /// leaf now covering `search`.
    pub(crate) fn split_smo(
        &self,
        logger: &mut ChainLogger<'_>,
        search: &SearchKey<'_>,
        need: usize,
    ) -> Result<PageId> {
        let smo = self.obs.timer();
        self.obs
            .event(EventKind::SmoBegin, ModeTag::X, logger.txn.0, self.root.0, 0);
        let r = self.split_smo_inner(logger, search, need);
        self.obs.hist.op_smo.record_since(smo);
        self.obs
            .event(EventKind::SmoEnd, ModeTag::X, logger.txn.0, self.root.0, 0);
        r
    }

    fn split_smo_inner(
        &self,
        logger: &mut ChainLogger<'_>,
        search: &SearchKey<'_>,
        need: usize,
    ) -> Result<PageId> {
        let token = logger.last_lsn;
        let mut path = self.descend_path(search)?;
        let leaf = path_leaf(&path)?;
        {
            let g = self.pool.fix_s(leaf)?; // latch-rank: 2
            if g.total_free() >= need + SLOT_LEN {
                return Ok(leaf); // someone already made room
            }
        }
        let idx = path.len() - 1;
        self.split_one(logger, &mut path, idx)?;
        crash_point!("smo.split.before_dummy_clr");
        logger.dummy_clr(token);
        crash_point!("smo.split.after_dummy_clr");
        // Re-descend: the separator just posted routes `search` to whichever
        // half now covers it (we still hold the tree latch, so this is
        // cheap and race-free).
        let path2 = self.descend_path(search)?;
        path_leaf(&path2)
    }

    /// Figure 8/10: the page-deletion SMO. Caller holds the X tree latch and
    /// has already performed and logged the key delete that emptied the leaf
    /// (`logger.last_lsn` is that record — the dummy CLR will point at it).
    /// Deletes every empty page on the search path bottom-up.
    pub(crate) fn page_delete_smo(
        &self,
        logger: &mut ChainLogger<'_>,
        search: &SearchKey<'_>,
    ) -> Result<()> {
        let smo = self.obs.timer();
        self.obs
            .event(EventKind::SmoBegin, ModeTag::X, logger.txn.0, self.root.0, 1);
        let r = self.page_delete_smo_inner(logger, search);
        self.obs.hist.op_smo.record_since(smo);
        self.obs
            .event(EventKind::SmoEnd, ModeTag::X, logger.txn.0, self.root.0, 1);
        r
    }

    fn page_delete_smo_inner(
        &self,
        logger: &mut ChainLogger<'_>,
        search: &SearchKey<'_>,
    ) -> Result<()> {
        let token = logger.last_lsn;
        let path = self.descend_path(search)?;
        let mut victim_idx = path.len() - 1;
        let mut performed = false;
        loop {
            let victim = path[victim_idx];
            if victim_idx == 0 {
                // The root is never freed. If it is an empty nonleaf (its
                // last child was just deleted), collapse it to an empty leaf.
                let mut g = self.pool.fix_x(self.root)?; // latch-rank: 2
                if g.level() > 0 && g.slot_count() == 0 {
                    let body = IndexBody::RootCollapse {
                        index: self.index_id,
                        old_level: g.level(),
                        old_cells: Vec::new(),
                    };
                    apply_body(&mut g, self.root, &body)?;
                    let lsn = logger.update(RmId::Index, self.root, body.encode());
                    g.record_update(lsn);
                    performed = true;
                }
                break;
            }
            let (prev, next, level, empty) = {
                let g = self.pool.fix_s(victim)?; // latch-rank: 2
                (g.prev(), g.next(), g.level(), g.slot_count() == 0)
            };
            if !empty {
                break;
            }
            // Unchain (leaf level only — nonleafs are not chained).
            if level == 0 {
                if !prev.is_null() {
                    self.smo_action(
                        logger,
                        prev,
                        IndexBody::ChainNext {
                            old: victim,
                            new: next,
                        },
                    )?;
                }
                if !next.is_null() {
                    self.smo_action(
                        logger,
                        next,
                        IndexBody::ChainPrev {
                            old: victim,
                            new: prev,
                        },
                    )?;
                }
                crash_point!("smo.delete.unchained");
            }
            // Remove the parent's separator for the victim.
            let pa = path[victim_idx - 1];
            let pa_empty = {
                let mut g = self.pool.fix_x(pa)?; // latch-rank: 2
                let slot = node_find_child(&g, victim)?;
                let cell = node_cell(&g, slot)?;
                let dropped_high = if cell.high_key.is_none() && slot > 0 {
                    node_cell(&g, slot - 1)?.high_key
                } else {
                    None
                };
                let body = IndexBody::RemoveSeparator {
                    index: self.index_id,
                    slot,
                    child: victim,
                    old_high: cell.high_key,
                    dropped_high,
                };
                apply_body(&mut g, pa, &body)?;
                let lsn = logger.update(RmId::Index, pa, body.encode());
                g.record_update(lsn);
                g.slot_count() == 0
            };
            crash_point!("smo.delete.sep_removed");
            // Free the victim page.
            {
                let mut g = self.pool.fix_x(victim)?; // latch-rank: 2
                let body = IndexBody::FreePage {
                    index: self.index_id,
                    level,
                    prev,
                    next,
                };
                apply_body(&mut g, victim, &body)?;
                let lsn = logger.update(RmId::Index, victim, body.encode());
                g.record_update(lsn);
            }
            crash_point!("smo.delete.page_freed");
            self.space.free(logger, victim)?;
            crash_point!("smo.delete.space_freed");
            self.stats.smo_page_deletes.bump();
            performed = true;
            if pa_empty {
                victim_idx -= 1;
            } else {
                break;
            }
        }
        if performed {
            crash_point!("smo.delete.before_dummy_clr");
            logger.dummy_clr(token);
            crash_point!("smo.delete.after_dummy_clr");
        }
        Ok(())
    }
}

/// Last page id of a descent path. `descend_path` always records at least
/// the root, so an empty path means a logic error upstream; surface it as a
/// recoverable error rather than a panic.
pub(crate) fn path_leaf(path: &[PageId]) -> Result<PageId> {
    path.last()
        .copied()
        .ok_or_else(|| Error::Internal("descend_path returned an empty path".into()))
}
