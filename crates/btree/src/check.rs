//! Structural invariant checker.
//!
//! Run on a quiesced tree (tests, crash-recovery verification, the Figure 11
//! experiment's oracle). Verifies every invariant ARIES/IM maintains:
//!
//! * page types, owners and levels are consistent with tree position;
//! * cells are sorted on every page; keys are globally sorted;
//! * every key in a child's subtree is strictly below the child's high key
//!   in its parent (the §1.1 high-key contract), and at-or-above the
//!   previous sibling's high key is *not* required (only upper bounds are
//!   stored — deletions widen coverage leftward by design);
//! * the leaf chain's prev/next pointers agree with left-to-right order;
//! * no page other than the root is empty once all SMOs are complete;
//! * every reachable page is marked allocated in the space map.

use crate::node::{leaf_keys, node_cells};
use crate::BTree;
use ariesim_common::page::PageType;
use ariesim_common::{Error, IndexKey, PageId, Result};

/// Summary of a verified tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeCheckReport {
    pub height: u16,
    pub leaves: usize,
    pub nonleaves: usize,
    pub keys: usize,
}

impl BTree {
    /// Verify the whole tree; returns statistics or the first violation.
    /// Must run quiesced (no concurrent SMOs).
    pub fn check_structure(&self) -> Result<TreeCheckReport> {
        let mut report = TreeCheckReport {
            height: 0,
            leaves: 0,
            nonleaves: 0,
            keys: 0,
        };
        let root = self.pool.fix_s(self.root)?; // latch-rank: 2
        report.height = root.level();
        drop(root);
        let mut leaf_chain: Vec<PageId> = Vec::new();
        let mut all_keys: Vec<IndexKey> = Vec::new();
        self.check_subtree(
            self.root,
            None,
            true,
            &mut report,
            &mut leaf_chain,
            &mut all_keys,
        )?;
        // Global key order.
        for w in all_keys.windows(2) {
            if w[0] >= w[1] {
                return Err(Error::Internal(format!(
                    "keys out of order: {:?} !< {:?}",
                    w[0], w[1]
                )));
            }
        }
        report.keys = all_keys.len();
        // Leaf chain must match in-order traversal.
        let mut prev = PageId::NULL;
        for (i, &leaf) in leaf_chain.iter().enumerate() {
            let g = self.pool.fix_s(leaf)?; // latch-rank: 2
            if g.prev() != prev {
                return Err(Error::Internal(format!(
                    "leaf {leaf}: prev is {} expected {prev}",
                    g.prev()
                )));
            }
            let expect_next = leaf_chain.get(i + 1).copied().unwrap_or(PageId::NULL);
            if g.next() != expect_next {
                return Err(Error::Internal(format!(
                    "leaf {leaf}: next is {} expected {expect_next}",
                    g.next()
                )));
            }
            prev = leaf;
        }
        // Every reachable page is allocated (the fixed root is allocated at
        // creation; descendants via SMOs).
        for &p in leaf_chain.iter() {
            if !self.space.is_allocated(p)? {
                return Err(Error::Internal(format!(
                    "reachable page {p} not allocated in space map"
                )));
            }
        }
        Ok(report)
    }

    fn check_subtree(
        &self,
        page_id: PageId,
        upper_bound: Option<&IndexKey>,
        is_root: bool,
        report: &mut TreeCheckReport,
        leaf_chain: &mut Vec<PageId>,
        all_keys: &mut Vec<IndexKey>,
    ) -> Result<()> {
        let g = self.pool.fix_s(page_id)?; // latch-rank: 2
        let ty = g.page_type()?;
        if g.owner() != self.index_id.0 {
            return Err(Error::Internal(format!(
                "page {page_id} owned by {}, expected {}",
                g.owner(),
                self.index_id
            )));
        }
        match ty {
            PageType::IndexLeaf => {
                if g.level() != 0 {
                    return Err(Error::Internal(format!(
                        "leaf {page_id} has level {}",
                        g.level()
                    )));
                }
                let keys = leaf_keys(&g)?;
                if keys.is_empty() && !is_root {
                    return Err(Error::Internal(format!(
                        "non-root leaf {page_id} is empty"
                    )));
                }
                if let Some(bound) = upper_bound {
                    if let Some(max) = keys.last() {
                        if max >= bound {
                            return Err(Error::Internal(format!(
                                "leaf {page_id}: key {max:?} ≥ parent high key {bound:?}"
                            )));
                        }
                    }
                }
                report.leaves += 1;
                leaf_chain.push(page_id);
                all_keys.extend(keys);
            }
            PageType::IndexNonLeaf => {
                let level = g.level();
                if level == 0 {
                    return Err(Error::Internal(format!(
                        "nonleaf {page_id} has level 0"
                    )));
                }
                let cells = node_cells(&g)?;
                if cells.is_empty() {
                    return Err(Error::Internal(format!("nonleaf {page_id} is empty")));
                }
                // High keys strictly increasing; only the last cell may lack one.
                for (i, c) in cells.iter().enumerate() {
                    let last = i == cells.len() - 1;
                    match (&c.high_key, last) {
                        (None, false) => {
                            return Err(Error::Internal(format!(
                                "nonleaf {page_id}: non-rightmost cell {i} lacks a high key"
                            )))
                        }
                        (Some(h), _) => {
                            if i > 0 {
                                if let Some(ph) = &cells[i - 1].high_key {
                                    if ph >= h {
                                        return Err(Error::Internal(format!(
                                            "nonleaf {page_id}: high keys not increasing at {i}"
                                        )));
                                    }
                                }
                            }
                            if let Some(bound) = upper_bound {
                                if h > bound {
                                    return Err(Error::Internal(format!(
                                        "nonleaf {page_id}: high key {h:?} above parent bound {bound:?}"
                                    )));
                                }
                            }
                        }
                        (None, true) => {}
                    }
                }
                report.nonleaves += 1;
                let child_level_expected = level - 1;
                drop(g);
                for c in &cells {
                    // Child level check happens inside recursion via type; also
                    // verify directly.
                    let cg = self.pool.fix_s(c.child)?; // latch-rank: 2
                    if cg.level() != child_level_expected {
                        return Err(Error::Internal(format!(
                            "child {} of {page_id} at level {}, expected {child_level_expected}",
                            c.child,
                            cg.level()
                        )));
                    }
                    drop(cg);
                    let bound = c.high_key.as_ref().or(upper_bound);
                    self.check_subtree(c.child, bound, false, report, leaf_chain, all_keys)?;
                }
            }
            other => {
                return Err(Error::Internal(format!(
                    "page {page_id} has type {other:?} inside the tree"
                )))
            }
        }
        Ok(())
    }
}
