//! Fetch and Fetch Next — the paper's §2.2–2.3 and Figure 5.
//!
//! Fetch finds the requested key value or, failing that, the **next higher
//! key**, and S-locks whichever it found for commit duration. Locking the
//! next key on the not-found path is what makes repeatable read work: no
//! other transaction can insert the requested value (it would need an
//! instant X lock on our locked key), and an uncommitted delete of the value
//! is detected by tripping on the deleter's commit-duration X next-key lock.
//! When no higher key exists anywhere, the per-index **EOF** name is locked
//! instead.
//!
//! Locks are requested **conditionally while the leaf latch is held**; if
//! denied, the page LSN is noted, every latch released, the lock awaited
//! unconditionally, and the leaf re-latched — if its LSN is unchanged the
//! previously inferred answer still holds, otherwise the search repeats
//! (Figure 5's "backup & search if needed").

use crate::node::{leaf_key, leaf_lower_bound};
use crate::BTree;
use ariesim_common::key::SearchKey;
use ariesim_common::page::PageType;
use ariesim_common::stats::Bump;
use ariesim_common::{Error, IndexKey, Lsn, PageBuf, PageId, Result, Rid};
use ariesim_lock::{LockDuration, LockMode, LockName};
use ariesim_storage::PageReadGuard;
use ariesim_txn::TxnHandle;

/// Start condition of a fetch (§1.1: "a starting condition (=, >, or >=)
/// will also be given").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FetchCond {
    /// Exactly the given value.
    Eq,
    /// First key with value ≥ the given value.
    Ge,
    /// First key with value > the given value.
    Gt,
}

/// Stopping comparison for a range scan (§1.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopCond {
    /// Continue while the key value is strictly below the stop value.
    Lt,
    /// Continue while ≤ the stop value.
    Le,
    /// Continue only through duplicates of exactly the stop value.
    Eq,
}

/// Result of a fetch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FetchResult {
    /// A key satisfying the condition, S-locked for commit duration.
    Found(IndexKey),
    /// Nothing satisfies it; the next higher key (or EOF) is locked so the
    /// answer stays true until commit (RR).
    NotFound,
}

/// A range-scan cursor: remembers the last returned position so Fetch Next
/// can usually resume without a traversal (§2.3).
#[derive(Clone, Debug)]
pub struct Cursor {
    pub(crate) last_key: IndexKey,
    pub(crate) leaf: PageId,
    pub(crate) leaf_lsn: Lsn,
}

/// Where the key following a position lives.
pub(crate) enum NextKey {
    /// At the given position on the same (still latched by caller) page.
    OnPage(IndexKey),
    /// First key of the right neighbour; the guard keeps it latched.
    OnNext(IndexKey, PageReadGuard),
    /// No higher key exists in the index.
    Eof,
    /// The right neighbour is empty or not a valid leaf — an SMO is in
    /// flight; wait for it and retry.
    Ambiguous,
}

/// Search key positioned immediately *after* `after`: the successor RID
/// makes a lower bound return the first key strictly greater than `after`.
pub(crate) fn successor_search(after: &IndexKey) -> SearchKey<'_> {
    let rid = if after.rid.slot.0 < u16::MAX {
        Rid::new(after.rid.page, after.rid.slot.0 + 1)
    } else {
        Rid::new(PageId(after.rid.page.0.wrapping_add(1)), 0)
    };
    SearchKey::full(&after.value, rid)
}

impl BTree {
    /// Find the key at `from_slot` on `leaf`, or the first key ≥ `search`
    /// on a leaf to the right (paper §2.2's "the next leaf would be latched
    /// and accessed while continuing to hold the latch on the first leaf").
    ///
    /// The walk *searches* each page rather than taking its first key: a
    /// concurrent split may have moved the relevant keys to a right sibling
    /// whose first key still sorts below `search`. The walk latch-couples
    /// along the leaf chain, so for multi-hop walks three latches are
    /// briefly held (original leaf + two chain pages) — a documented
    /// deviation from the paper's two-latch budget, which describes only the
    /// single-hop case (see DESIGN.md §7).
    pub(crate) fn next_key_after(
        &self,
        leaf: &PageBuf,
        from_slot: u16,
        search: &SearchKey<'_>,
    ) -> Result<NextKey> {
        if from_slot < leaf.slot_count() {
            return Ok(NextKey::OnPage(leaf_key(leaf, from_slot)?));
        }
        let mut next = leaf.next();
        let mut _walk: Option<PageReadGuard> = None;
        loop {
            if next.is_null() {
                return Ok(NextKey::Eof);
            }
            let g = self.pool.fix_s(next)?; // latch-rank: 2
            let valid = matches!(g.page_type(), Ok(PageType::IndexLeaf))
                && g.owner() == self.index_id.0
                && g.level() == 0;
            if !valid {
                return Ok(NextKey::Ambiguous);
            }
            let idx = leaf_lower_bound(&g, search)?;
            if idx < g.slot_count() {
                let k = leaf_key(&g, idx)?;
                return Ok(NextKey::OnNext(k, g));
            }
            // Nothing ≥ search here (page emptied or shrunk by an SMO, or a
            // gap between a split's halves): keep walking, coupled.
            next = g.next();
            _walk = Some(g);
        }
    }

    /// Fetch per §2.2: returns the first key satisfying (`value`, `cond`),
    /// S-locking it — or the next key / EOF on the not-found path.
    pub fn fetch(&self, txn: &TxnHandle, value: &[u8], cond: FetchCond) -> Result<FetchResult> {
        let op = self.obs.timer();
        let r = self.fetch_inner(txn, value, cond);
        self.obs.hist.op_fetch.record_since(op);
        r
    }

    fn fetch_inner(&self, txn: &TxnHandle, value: &[u8], cond: FetchCond) -> Result<FetchResult> {
        self.stats.index_fetches.bump();
        let search = SearchKey::value_only(value);
        // When walking right, Gt must skip every duplicate of `value`; a
        // maximal-RID search key positions strictly past them.
        let max_rid = Rid::new(PageId(u32::MAX), u16::MAX);
        let walk_search = match cond {
            FetchCond::Gt => SearchKey::full(value, max_rid),
            _ => SearchKey::value_only(value),
        };
        loop {
            let leaf = self.traverse(&search, false)?;
            let page = leaf.page();
            let mut idx = leaf_lower_bound(page, &search)?;
            // For Gt, skip keys equal to the value.
            if cond == FetchCond::Gt {
                while idx < page.slot_count() && leaf_key(page, idx)?.value == value {
                    idx += 1;
                }
            }
            let mut found = match self.next_key_after(page, idx, &walk_search)? {
                NextKey::OnPage(k) => Some((k, None)),
                NextKey::OnNext(k, g) => Some((k, Some(g))),
                NextKey::Eof => None,
                NextKey::Ambiguous => {
                    drop(leaf);
                    self.tree_instant_s(); // latch-rank: 1 (fresh)
                    continue;
                }
            };
            let lock = match &found {
                Some((k, _)) => self.key_lock(k),
                None => self.eof_lock(),
            };
            match self.locks.request(
                txn.id,
                lock.clone(),
                LockMode::S,
                LockDuration::Commit,
                true,
            ) {
                Ok(()) => {
                    let result = Self::evaluate(found.take().map(|(k, _)| k), value, cond);
                    return Ok(result);
                }
                Err(Error::WouldBlock) => {
                    // Figure 5: note LSN, unlatch, wait, revalidate.
                    let noted = leaf.lsn();
                    let leaf_id = leaf.page_id();
                    drop(found);
                    drop(leaf);
                    self.locks
                        .request(txn.id, lock, LockMode::S, LockDuration::Commit, false)?;
                    let g = self.pool.fix_s(leaf_id)?; // latch-rank: 2 (fresh)
                    if g.page_lsn() == noted {
                        // Nothing changed while we waited: answer stands.
                        // Note: `found` was dropped with its guard, so
                        // recompute cheaply from the re-latched page.
                        let idx2 = leaf_lower_bound(&g, &search)?;
                        let k = if idx2 < g.slot_count() {
                            Some(leaf_key(&g, idx2)?)
                        } else {
                            None
                        };
                        if let Some(k) = k {
                            if cond != FetchCond::Gt || k.value != value {
                                return Ok(Self::evaluate(Some(k), value, cond));
                            }
                        }
                        // Fall through to retry for walk cases.
                    }
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn evaluate(found: Option<IndexKey>, value: &[u8], cond: FetchCond) -> FetchResult {
        match found {
            Some(k) => match cond {
                FetchCond::Eq => {
                    if k.value == value {
                        FetchResult::Found(k)
                    } else {
                        FetchResult::NotFound
                    }
                }
                FetchCond::Ge => FetchResult::Found(k),
                FetchCond::Gt => {
                    if k.value == value {
                        FetchResult::NotFound // caller retries; shouldn't reach
                    } else {
                        FetchResult::Found(k)
                    }
                }
            },
            None => FetchResult::NotFound,
        }
    }

    /// Open a scan at the first key with value ≥ (`Ge`) / > (`Gt`) / = (`Eq`)
    /// `value`. Returns the first key (if any) and a cursor for
    /// [`fetch_next`](Self::fetch_next).
    pub fn open_scan(
        &self,
        txn: &TxnHandle,
        value: &[u8],
        cond: FetchCond,
    ) -> Result<(Option<IndexKey>, Option<Cursor>)> {
        match self.fetch(txn, value, cond)? {
            FetchResult::Found(k) => {
                let cursor = self.cursor_for(&k)?;
                Ok((Some(k), Some(cursor)))
            }
            FetchResult::NotFound => Ok((None, None)),
        }
    }

    /// Build a cursor positioned on `key` (which the caller just fetched).
    fn cursor_for(&self, key: &IndexKey) -> Result<Cursor> {
        let leaf = self.traverse(&SearchKey::from_key(key), false)?;
        Ok(Cursor {
            last_key: key.clone(),
            leaf: leaf.page_id(),
            leaf_lsn: leaf.lsn(),
        })
    }

    /// Fetch Next per §2.3: the key following the cursor position, S-locked.
    /// Returns `None` at end of index (EOF locked). The caller enforces its
    /// stop condition — the paper's protocol requires the terminating key to
    /// be locked, which has already happened by the time the caller sees it.
    pub fn fetch_next(&self, txn: &TxnHandle, cursor: &mut Cursor) -> Result<Option<IndexKey>> {
        let op = self.obs.timer();
        let r = self.fetch_next_inner(txn, cursor);
        self.obs.hist.op_fetch.record_since(op);
        r
    }

    fn fetch_next_inner(&self, txn: &TxnHandle, cursor: &mut Cursor) -> Result<Option<IndexKey>> {
        self.stats.index_fetches.bump();
        let found = self.fetch_next_internal(txn, &cursor.last_key.clone())?;
        if let Some(k) = &found {
            cursor.last_key = k.clone();
            // Remember the new position (best effort; a stale leaf id just
            // means the next call re-traverses).
            if let Ok(leaf) = self.traverse(&SearchKey::from_key(k), false) {
                cursor.leaf = leaf.page_id();
                cursor.leaf_lsn = leaf.lsn();
            }
        }
        Ok(found)
    }

    /// Locked lookup of the first key strictly greater than `after`.
    fn fetch_next_internal(
        &self,
        txn: &TxnHandle,
        after: &IndexKey,
    ) -> Result<Option<IndexKey>> {
        let search = SearchKey::from_key(after);
        let succ = successor_search(after);
        loop {
            let leaf = self.traverse(&search, false)?;
            let page = leaf.page();
            let idx = leaf_lower_bound(page, &succ)?;
            let found = match self.next_key_after(page, idx, &succ)? {
                NextKey::OnPage(k) => Some((k, None)),
                NextKey::OnNext(k, g) => Some((k, Some(g))),
                NextKey::Eof => None,
                NextKey::Ambiguous => {
                    drop(leaf);
                    self.tree_instant_s(); // latch-rank: 1 (fresh)
                    continue;
                }
            };
            let lock = match &found {
                Some((k, _)) => self.key_lock(k),
                None => self.eof_lock(),
            };
            match self.locks.request(
                txn.id,
                lock.clone(),
                LockMode::S,
                LockDuration::Commit,
                true,
            ) {
                Ok(()) => return Ok(found.map(|(k, _)| k)),
                Err(Error::WouldBlock) => {
                    let noted = leaf.lsn();
                    let leaf_id = leaf.page_id();
                    drop(found);
                    drop(leaf);
                    self.locks
                        .request(txn.id, lock, LockMode::S, LockDuration::Commit, false)?;
                    let g = self.pool.fix_s(leaf_id)?; // latch-rank: 2 (fresh)
                    if g.page_lsn() == noted {
                        // Unchanged: recompute the same answer and return it.
                        let idx2 = leaf_lower_bound(&g, &succ)?;
                        if idx2 < g.slot_count() {
                            return Ok(Some(leaf_key(&g, idx2)?));
                        }
                    }
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fetch by key-value *prefix* (§1.1: "a key value or a partial key
    /// value (its prefix)"): returns the first key whose value starts with
    /// `prefix`, S-locked commit duration — or NotFound with the next key /
    /// EOF locked, exactly like [`fetch`](Self::fetch).
    pub fn fetch_prefix(&self, txn: &TxnHandle, prefix: &[u8]) -> Result<FetchResult> {
        match self.fetch(txn, prefix, FetchCond::Ge)? {
            FetchResult::Found(k) if k.value.starts_with(prefix) => {
                Ok(FetchResult::Found(k))
            }
            // The next key was locked either way, so the "no key with this
            // prefix" answer is repeatable.
            _ => Ok(FetchResult::NotFound),
        }
    }

    /// Fetch Next with the paper's stopping specification (§1.1: "a stopping
    /// key and a comparison operator (<, =, or <=)"): returns `None` once
    /// the next key falls outside the bound. The terminating key has been
    /// locked by then, so the range edge is RR-protected either way.
    pub fn fetch_next_until(
        &self,
        txn: &TxnHandle,
        cursor: &mut Cursor,
        stop_value: &[u8],
        stop: StopCond,
    ) -> Result<Option<IndexKey>> {
        match self.fetch_next(txn, cursor)? {
            Some(k) => {
                let within = match stop {
                    StopCond::Lt => k.value.as_slice() < stop_value,
                    StopCond::Le => k.value.as_slice() <= stop_value,
                    StopCond::Eq => k.value.as_slice() == stop_value,
                };
                Ok(within.then_some(k))
            }
            None => Ok(None),
        }
    }

    /// Unlocked full scan (verification and examples only — takes no locks,
    /// so it sees uncommitted state).
    pub fn scan_all_unlocked(&self) -> Result<Vec<IndexKey>> {
        let mut out = Vec::new();
        // Find the leftmost leaf.
        let mut g = self.pool.fix_s(self.root)?; // latch-rank: 2
        while g.level() > 0 {
            let child = crate::node::node_cell(&g, 0)?.child;
            let cg = self.pool.fix_s(child)?; // latch-rank: 2
            drop(g);
            g = cg;
        }
        loop {
            for i in 0..g.slot_count() {
                out.push(leaf_key(&g, i)?);
            }
            let next = g.next();
            if next.is_null() {
                break;
            }
            let ng = self.pool.fix_s(next)?; // latch-rank: 2
            drop(g);
            g = ng;
        }
        Ok(out)
    }

    /// Unlocked point lookup: the first key whose value equals `value`, or
    /// `None`. Latch-only — no locks are requested, so the caller provides
    /// isolation (a replication standby excludes its redo applier for the
    /// duration of the read; verification accepts racy answers). Returns
    /// [`Error::WouldBlock`] when the leaf chain is mid-SMO and the answer
    /// is ambiguous; retry once the structure settles.
    pub fn get_unlocked(&self, value: &[u8]) -> Result<Option<IndexKey>> {
        let search = SearchKey::value_only(value);
        let leaf = self.traverse(&search, false)?;
        let idx = leaf_lower_bound(leaf.page(), &search)?;
        match self.next_key_after(leaf.page(), idx, &search)? {
            NextKey::OnPage(k) | NextKey::OnNext(k, _) => {
                Ok((k.value.as_slice() == value).then_some(k))
            }
            NextKey::Eof => Ok(None),
            NextKey::Ambiguous => Err(Error::WouldBlock),
        }
    }

    /// Lock name of an arbitrary lockable key (test helper).
    pub fn lock_name_of(&self, key: &IndexKey) -> LockName {
        self.key_lock(key)
    }
}
