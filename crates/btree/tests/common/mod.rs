//! Shared fixture: a full engine stack (log, pool, locks, transaction
//! manager, resource managers) plus one B+-tree.

use ariesim_btree::{BTree, IndexRm, LockProtocol};
use ariesim_common::stats::{new_stats, StatsHandle};
use ariesim_common::tmp::TempDir;
use ariesim_common::{IndexId, IndexKey, PageId, Rid};
use ariesim_lock::LockManager;
use ariesim_storage::{BufferPool, DiskManager, PoolOptions, SpaceMap, SpaceRm};
use ariesim_txn::{RmRegistry, TransactionManager};
use ariesim_wal::{LogManager, LogOptions};
use std::sync::Arc;

#[allow(dead_code)]
pub struct Fix {
    pub _dir: TempDir,
    pub stats: StatsHandle,
    pub log: Arc<LogManager>,
    pub pool: Arc<BufferPool>,
    pub locks: Arc<LockManager>,
    pub tm: Arc<TransactionManager>,
    pub tree: Arc<BTree>,
    pub index_rm: Arc<IndexRm>,
}

pub fn fix_with(unique: bool, protocol: LockProtocol, frames: usize) -> Fix {
    let dir = TempDir::new("btree-it");
    let stats = new_stats();
    let log = Arc::new(
        LogManager::open(&dir.file("wal"), LogOptions::default(), stats.clone()).unwrap(),
    );
    let disk = DiskManager::open(&dir.file("db"), stats.clone()).unwrap();
    let pool = BufferPool::new(disk, log.clone(), PoolOptions { frames, ..PoolOptions::default() }, stats.clone());
    SpaceMap::initialize(&pool).unwrap();
    let locks = Arc::new(LockManager::new(stats.clone()));
    let rms = Arc::new(RmRegistry::new());
    let index_rm = IndexRm::new(pool.clone(), stats.clone());
    rms.register(index_rm.clone());
    rms.register(Arc::new(SpaceRm::new(pool.clone())));
    let tm = Arc::new(TransactionManager::new(
        log.clone(),
        locks.clone(),
        pool.clone(),
        rms,
        stats.clone(),
    ));
    let txn = tm.begin();
    let root = BTree::create(&txn, IndexId(1), &pool, &log).unwrap();
    tm.commit(&txn).unwrap();
    let tree = BTree::new(
        IndexId(1),
        root,
        unique,
        protocol,
        pool.clone(),
        locks.clone(),
        log.clone(),
        stats.clone(),
    );
    index_rm.register_tree(tree.clone());
    Fix {
        _dir: dir,
        stats,
        log,
        pool,
        locks,
        tm,
        tree,
        index_rm,
    }
}

#[allow(dead_code)]
pub fn fix() -> Fix {
    fix_with(false, LockProtocol::DataOnly, 256)
}

/// Deterministic fake RID for test keys (no record manager in these tests;
/// data-only locking just needs distinct names).
pub fn rid(n: u32) -> Rid {
    Rid::new(PageId(1_000_000 + n / 100), (n % 100) as u16)
}

pub fn key(v: impl AsRef<[u8]>, n: u32) -> IndexKey {
    IndexKey::new(v.as_ref().to_vec(), rid(n))
}

/// Zero-padded sortable numeric key.
pub fn nkey(n: u32) -> IndexKey {
    key(format!("key-{n:08}"), n)
}
