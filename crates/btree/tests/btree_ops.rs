//! Single-threaded functional tests of the ARIES/IM B+-tree: inserts with
//! splits across multiple levels, deletes with page deletions down to an
//! empty root, fetch semantics, rollbacks (page-oriented and logical undo),
//! and unique-index behaviour.

mod common;

use ariesim_btree::fetch::{FetchCond, FetchResult};
use ariesim_btree::LockProtocol;
use ariesim_common::Error;
use common::{fix, fix_with, key, nkey};

#[test]
fn insert_fetch_single_key() {
    let f = fix();
    let txn = f.tm.begin();
    let k = nkey(1);
    f.tree.insert(&txn, &k).unwrap();
    match f.tree.fetch(&txn, &k.value, FetchCond::Eq).unwrap() {
        FetchResult::Found(found) => assert_eq!(found, k),
        other => panic!("expected Found, got {other:?}"),
    }
    f.tm.commit(&txn).unwrap();
}

#[test]
fn fetch_not_found_locks_next_key() {
    let f = fix();
    let txn = f.tm.begin();
    f.tree.insert(&txn, &nkey(5)).unwrap();
    f.tm.commit(&txn).unwrap();

    let txn = f.tm.begin();
    // Searching below key 5 must not find key 3, and must S-lock key 5 (the
    // next key) for commit duration.
    assert_eq!(
        f.tree.fetch(&txn, nkey(3).value.as_slice(), FetchCond::Eq).unwrap(),
        FetchResult::NotFound
    );
    let name = f.tree.lock_name_of(&nkey(5));
    assert_eq!(
        f.locks.holds(txn.id, &name),
        Some(ariesim_lock::LockMode::S)
    );
    f.tm.commit(&txn).unwrap();
}

#[test]
fn fetch_past_everything_locks_eof() {
    let f = fix();
    let txn = f.tm.begin();
    f.tree.insert(&txn, &nkey(1)).unwrap();
    assert_eq!(
        f.tree
            .fetch(&txn, b"zzzzzzzz".as_slice(), FetchCond::Ge)
            .unwrap(),
        FetchResult::NotFound
    );
    let eof = f.tree.eof_lock_name();
    assert!(f.locks.holds(txn.id, &eof).is_some());
    f.tm.commit(&txn).unwrap();
}

#[test]
fn bulk_insert_splits_and_structure_holds() {
    let f = fix();
    let txn = f.tm.begin();
    let n = 2000u32;
    for i in 0..n {
        f.tree.insert(&txn, &nkey(i)).unwrap();
    }
    f.tm.commit(&txn).unwrap();
    let report = f.tree.check_structure().unwrap();
    assert_eq!(report.keys, n as usize);
    assert!(report.height >= 1, "tree should have split: {report:?}");
    assert!(f.stats.snapshot().smo_splits > 0);
    // Everything fetchable.
    let txn = f.tm.begin();
    for i in (0..n).step_by(97) {
        let k = nkey(i);
        assert_eq!(
            f.tree.fetch(&txn, &k.value, FetchCond::Eq).unwrap(),
            FetchResult::Found(k)
        );
    }
    f.tm.commit(&txn).unwrap();
}

#[test]
fn scan_returns_sorted_everything() {
    let f = fix();
    let txn = f.tm.begin();
    // Insert in a scrambled order.
    let n = 1500u32;
    for i in 0..n {
        let j = (i * 7919) % n;
        f.tree.insert(&txn, &nkey(j)).unwrap();
    }
    f.tm.commit(&txn).unwrap();
    let keys = f.tree.scan_all_unlocked().unwrap();
    assert_eq!(keys.len(), n as usize);
    for w in keys.windows(2) {
        assert!(w[0] < w[1]);
    }
}

#[test]
fn range_scan_via_cursor() {
    let f = fix();
    let txn = f.tm.begin();
    for i in 0..300u32 {
        f.tree.insert(&txn, &nkey(i)).unwrap();
    }
    f.tm.commit(&txn).unwrap();

    let txn = f.tm.begin();
    let (first, cursor) = f
        .tree
        .open_scan(&txn, nkey(100).value.as_slice(), FetchCond::Ge)
        .unwrap();
    assert_eq!(first, Some(nkey(100)));
    let mut cursor = cursor.unwrap();
    let mut got = vec![first.unwrap()];
    while got.len() < 50 {
        match f.tree.fetch_next(&txn, &mut cursor).unwrap() {
            Some(k) => got.push(k),
            None => break,
        }
    }
    let want: Vec<_> = (100..150).map(nkey).collect();
    assert_eq!(got, want);
    f.tm.commit(&txn).unwrap();
}

#[test]
fn delete_everything_collapses_tree() {
    let f = fix();
    let txn = f.tm.begin();
    let n = 1200u32;
    for i in 0..n {
        f.tree.insert(&txn, &nkey(i)).unwrap();
    }
    f.tm.commit(&txn).unwrap();
    assert!(f.tree.check_structure().unwrap().height >= 1);

    let txn = f.tm.begin();
    for i in 0..n {
        f.tree.delete(&txn, &nkey(i)).unwrap();
    }
    f.tm.commit(&txn).unwrap();
    let report = f.tree.check_structure().unwrap();
    assert_eq!(report.keys, 0);
    assert_eq!(report.leaves, 1, "tree should collapse to an empty root");
    assert!(f.stats.snapshot().smo_page_deletes > 0);
}

#[test]
fn delete_not_found_reports_and_locks() {
    let f = fix();
    let txn = f.tm.begin();
    f.tree.insert(&txn, &nkey(10)).unwrap();
    f.tm.commit(&txn).unwrap();
    let txn = f.tm.begin();
    assert!(matches!(
        f.tree.delete(&txn, &nkey(5)),
        Err(Error::NotFound)
    ));
    f.tm.commit(&txn).unwrap();
}

#[test]
fn rollback_of_insert_is_page_oriented_when_key_still_there() {
    let f = fix();
    let txn = f.tm.begin();
    f.tree.insert(&txn, &nkey(1)).unwrap();
    f.tm.commit(&txn).unwrap();

    let before = f.stats.snapshot();
    let txn = f.tm.begin();
    f.tree.insert(&txn, &nkey(2)).unwrap();
    f.tm.rollback(&txn).unwrap();
    let delta = f.stats.snapshot().since(&before);
    assert_eq!(delta.undo_page_oriented, 1);
    assert_eq!(delta.undo_logical, 0);

    let keys = f.tree.scan_all_unlocked().unwrap();
    assert_eq!(keys, vec![nkey(1)]);
    f.tree.check_structure().unwrap();
}

#[test]
fn rollback_of_delete_restores_key() {
    let f = fix();
    let txn = f.tm.begin();
    for i in 0..10u32 {
        f.tree.insert(&txn, &nkey(i)).unwrap();
    }
    f.tm.commit(&txn).unwrap();
    let txn = f.tm.begin();
    f.tree.delete(&txn, &nkey(5)).unwrap();
    f.tm.rollback(&txn).unwrap();
    let keys = f.tree.scan_all_unlocked().unwrap();
    assert_eq!(keys.len(), 10);
    assert!(keys.contains(&nkey(5)));
    f.tree.check_structure().unwrap();
}

#[test]
fn figure1_logical_undo_after_intervening_split() {
    // T1 inserts K8 into P1. T2 splits P1 (bulk inserts) moving K8 to P2.
    // T1 rolls back: the undo must go logical (retraverse) and delete K8
    // from its new home.
    let f = fix();
    let setup = f.tm.begin();
    // Lay down enough keys that P1 is nearly full.
    for i in 0..220u32 {
        f.tree.insert(&setup, &nkey(2 * i)).unwrap();
    }
    f.tm.commit(&setup).unwrap();
    let splits_before = f.stats.snapshot().smo_splits;

    let t1 = f.tm.begin();
    let k8 = nkey(999_999); // sorts after everything: will live on the far right
    f.tree.insert(&t1, &k8).unwrap();

    // T2 inserts until at least one split has happened (moving the right
    // edge — including K8 — onto a new page).
    let t2 = f.tm.begin();
    let mut i = 0u32;
    while f.stats.snapshot().smo_splits == splits_before {
        f.tree.insert(&t2, &nkey(2 * i + 1)).unwrap();
        i += 1;
        assert!(i < 10_000, "no split after many inserts");
    }
    f.tm.commit(&t2).unwrap();

    let before = f.stats.snapshot();
    f.tm.rollback(&t1).unwrap();
    let delta = f.stats.snapshot().since(&before);
    assert!(
        delta.undo_logical >= 1 || delta.undo_page_oriented >= 1,
        "rollback performed no undo?"
    );
    // K8 gone, everything else intact.
    let keys = f.tree.scan_all_unlocked().unwrap();
    assert!(!keys.contains(&k8));
    f.tree.check_structure().unwrap();
}

#[test]
fn split_survives_rollback_of_its_transaction() {
    // The SMO is a nested top action: rolling back the transaction that
    // split the page undoes its *inserts* but not the split.
    let f = fix();
    let setup = f.tm.begin();
    for i in 0..200u32 {
        f.tree.insert(&setup, &nkey(i)).unwrap();
    }
    f.tm.commit(&setup).unwrap();

    let t1 = f.tm.begin();
    let splits_before = f.stats.snapshot().smo_splits;
    let mut i = 200u32;
    while f.stats.snapshot().smo_splits == splits_before {
        f.tree.insert(&t1, &nkey(i)).unwrap();
        i += 1;
        assert!(i < 10_000);
    }
    let leaves_after_split = f.tree.check_structure().unwrap().leaves;
    f.tm.rollback(&t1).unwrap();

    let report = f.tree.check_structure().unwrap();
    assert_eq!(report.keys, 200, "only T1's inserts are undone");
    assert_eq!(
        report.leaves, leaves_after_split,
        "the split must survive the rollback (nested top action)"
    );
}

#[test]
fn unique_index_rejects_duplicate_value() {
    let f = fix_with(true, LockProtocol::DataOnly, 256);
    let txn = f.tm.begin();
    f.tree.insert(&txn, &key("alpha", 1)).unwrap();
    // Same value, different RID: still a violation in a unique index.
    assert!(matches!(
        f.tree.insert(&txn, &key("alpha", 2)),
        Err(Error::UniqueViolation)
    ));
    f.tm.commit(&txn).unwrap();
}

#[test]
fn nonunique_index_accepts_duplicates() {
    let f = fix();
    let txn = f.tm.begin();
    for i in 0..50u32 {
        f.tree.insert(&txn, &key("dup", i)).unwrap();
    }
    f.tm.commit(&txn).unwrap();
    let keys = f.tree.scan_all_unlocked().unwrap();
    assert_eq!(keys.len(), 50);
    f.tree.check_structure().unwrap();
}

#[test]
fn unique_violation_against_own_uncommitted_insert() {
    let f = fix_with(true, LockProtocol::DataOnly, 256);
    let txn = f.tm.begin();
    f.tree.insert(&txn, &key("x", 1)).unwrap();
    assert!(matches!(
        f.tree.insert(&txn, &key("x", 2)),
        Err(Error::UniqueViolation)
    ));
    f.tm.commit(&txn).unwrap();
}

#[test]
fn insert_after_deleting_same_value_same_txn() {
    let f = fix_with(true, LockProtocol::DataOnly, 256);
    let txn = f.tm.begin();
    f.tree.insert(&txn, &key("v", 1)).unwrap();
    f.tm.commit(&txn).unwrap();
    let txn = f.tm.begin();
    f.tree.delete(&txn, &key("v", 1)).unwrap();
    // Own locks cover the next-key names: re-insert succeeds.
    f.tree.insert(&txn, &key("v", 2)).unwrap();
    f.tm.commit(&txn).unwrap();
    let keys = f.tree.scan_all_unlocked().unwrap();
    assert_eq!(keys, vec![key("v", 2)]);
}

#[test]
fn fetch_conditions_ge_gt_eq() {
    let f = fix();
    let txn = f.tm.begin();
    for i in [10u32, 20, 30] {
        f.tree.insert(&txn, &nkey(i)).unwrap();
    }
    f.tm.commit(&txn).unwrap();
    let txn = f.tm.begin();
    // Ge of an absent value: next higher.
    assert_eq!(
        f.tree.fetch(&txn, &nkey(15).value, FetchCond::Ge).unwrap(),
        FetchResult::Found(nkey(20))
    );
    // Gt of a present value: strictly after it.
    assert_eq!(
        f.tree.fetch(&txn, &nkey(20).value, FetchCond::Gt).unwrap(),
        FetchResult::Found(nkey(30))
    );
    // Eq present / absent.
    assert_eq!(
        f.tree.fetch(&txn, &nkey(10).value, FetchCond::Eq).unwrap(),
        FetchResult::Found(nkey(10))
    );
    assert_eq!(
        f.tree.fetch(&txn, &nkey(11).value, FetchCond::Eq).unwrap(),
        FetchResult::NotFound
    );
    f.tm.commit(&txn).unwrap();
}

#[test]
fn key_too_large_is_rejected() {
    let f = fix();
    let txn = f.tm.begin();
    let huge = vec![b'x'; ariesim_btree::MAX_KEY_VALUE_LEN + 1];
    assert!(matches!(
        f.tree.insert(&txn, &common::key(huge, 1)),
        Err(Error::TooLarge { .. })
    ));
    f.tm.commit(&txn).unwrap();
}

#[test]
fn mixed_insert_delete_stress_keeps_structure() {
    let f = fix();
    let mut present = std::collections::BTreeSet::new();
    for round in 0..6u32 {
        let txn = f.tm.begin();
        for i in 0..400u32 {
            let id = (round * 131 + i * 7) % 900;
            if present.contains(&id) {
                f.tree.delete(&txn, &nkey(id)).unwrap();
                present.remove(&id);
            } else {
                f.tree.insert(&txn, &nkey(id)).unwrap();
                present.insert(id);
            }
        }
        if round % 2 == 0 {
            f.tm.commit(&txn).unwrap();
        } else {
            // Roll the whole round back.
            let txn_keys: Vec<u32> = Vec::new();
            drop(txn_keys);
            f.tm.rollback(&txn).unwrap();
            // Recompute `present` by rescanning (rollback restored state).
            present = f
                .tree
                .scan_all_unlocked()
                .unwrap()
                .into_iter()
                .map(|k| {
                    std::str::from_utf8(&k.value).unwrap()["key-".len()..]
                        .parse::<u32>()
                        .unwrap()
                })
                .collect();
        }
        let report = f.tree.check_structure().unwrap();
        assert_eq!(report.keys, present.len(), "round {round}");
    }
}

#[test]
fn index_specific_locking_acquires_key_locks() {
    let f = fix_with(false, LockProtocol::IndexSpecific, 256);
    let before = f.stats.snapshot();
    let txn = f.tm.begin();
    f.tree.insert(&txn, &nkey(1)).unwrap();
    let delta = f.stats.snapshot().since(&before);
    assert!(
        delta.locks_keyvalue >= 1,
        "index-specific inserts must lock the key itself: {delta:?}"
    );
    f.tm.commit(&txn).unwrap();
}

#[test]
fn fetch_prefix_finds_and_misses() {
    let f = fix();
    let txn = f.tm.begin();
    for v in ["apple", "apricot", "banana"] {
        f.tree.insert(&txn, &key(v, 1)).unwrap();
    }
    f.tm.commit(&txn).unwrap();
    let txn = f.tm.begin();
    // Prefix present.
    match f.tree.fetch_prefix(&txn, b"ap").unwrap() {
        FetchResult::Found(k) => assert_eq!(k.value, b"apple"),
        other => panic!("{other:?}"),
    }
    match f.tree.fetch_prefix(&txn, b"apr").unwrap() {
        FetchResult::Found(k) => assert_eq!(k.value, b"apricot"),
        other => panic!("{other:?}"),
    }
    // Prefix absent: NotFound, with the next key locked for RR.
    assert_eq!(
        f.tree.fetch_prefix(&txn, b"az").unwrap(),
        FetchResult::NotFound
    );
    assert_eq!(
        f.tree.fetch_prefix(&txn, b"zzz").unwrap(),
        FetchResult::NotFound
    );
    f.tm.commit(&txn).unwrap();
}

#[test]
fn fetch_next_until_honours_stop_conditions() {
    use ariesim_btree::fetch::StopCond;
    let f = fix();
    let txn = f.tm.begin();
    for i in 0..20u32 {
        f.tree.insert(&txn, &nkey(i)).unwrap();
    }
    f.tm.commit(&txn).unwrap();

    let txn = f.tm.begin();
    // Scan [5, 10) with Lt.
    let (first, cursor) = f
        .tree
        .open_scan(&txn, &nkey(5).value, FetchCond::Ge)
        .unwrap();
    assert_eq!(first, Some(nkey(5)));
    let mut cursor = cursor.unwrap();
    let mut got = vec![5u32];
    while let Some(k) = f
        .tree
        .fetch_next_until(&txn, &mut cursor, &nkey(10).value, StopCond::Lt)
        .unwrap()
    {
        got.push(
            std::str::from_utf8(&k.value).unwrap()["key-".len()..]
                .parse()
                .unwrap(),
        );
    }
    assert_eq!(got, vec![5, 6, 7, 8, 9]);

    // Scan [5, 10] with Le.
    let (_, cursor) = f
        .tree
        .open_scan(&txn, &nkey(5).value, FetchCond::Ge)
        .unwrap();
    let mut cursor = cursor.unwrap();
    let mut count = 1;
    while f
        .tree
        .fetch_next_until(&txn, &mut cursor, &nkey(10).value, StopCond::Le)
        .unwrap()
        .is_some()
    {
        count += 1;
    }
    assert_eq!(count, 6);
    f.tm.commit(&txn).unwrap();
}
