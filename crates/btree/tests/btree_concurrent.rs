//! Multi-threaded tests: concurrent inserts/deletes/fetches racing SMOs,
//! deadlock-victim retry, and the §4 claims (no latch deadlocks — the runs
//! complete; rolling-back transactions never deadlock).

mod common;

use ariesim_btree::fetch::{FetchCond, FetchResult};
use ariesim_common::Error;
use common::{fix_with, nkey};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn concurrent_disjoint_inserts() {
    let f = fix_with(false, ariesim_btree::LockProtocol::DataOnly, 512);
    let threads = 8u32;
    let per = 500u32;
    std::thread::scope(|s| {
        for t in 0..threads {
            let tm = f.tm.clone();
            let tree = f.tree.clone();
            s.spawn(move || {
                let txn = tm.begin();
                for i in 0..per {
                    tree.insert(&txn, &nkey(t * per + i)).unwrap();
                }
                tm.commit(&txn).unwrap();
            });
        }
    });
    let report = f.tree.check_structure().unwrap();
    assert_eq!(report.keys, (threads * per) as usize);
}

#[test]
fn concurrent_inserts_deletes_and_readers() {
    let f = fix_with(false, ariesim_btree::LockProtocol::DataOnly, 512);
    // Seed half the space.
    let txn = f.tm.begin();
    for i in (0..2000u32).step_by(2) {
        f.tree.insert(&txn, &nkey(i)).unwrap();
    }
    f.tm.commit(&txn).unwrap();

    let deadlocks = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        // Writers: each owns a disjoint odd-key slice; insert then delete.
        for t in 0..4u32 {
            let tm = f.tm.clone();
            let tree = f.tree.clone();
            s.spawn(move || {
                for round in 0..3 {
                    let txn = tm.begin();
                    let mut ok = true;
                    for i in 0..150u32 {
                        let k = nkey(1 + 2 * (t * 150 + i));
                        let r = if round % 2 == 0 {
                            tree.insert(&txn, &k)
                        } else {
                            tree.delete(&txn, &k)
                        };
                        match r {
                            Ok(()) => {}
                            Err(Error::Deadlock { .. }) => {
                                tm.rollback(&txn).unwrap();
                                ok = false;
                                break;
                            }
                            Err(e) => panic!("writer: {e}"),
                        }
                    }
                    if ok {
                        tm.commit(&txn).unwrap();
                    }
                }
            });
        }
        // Readers: point fetches over the committed even keys.
        for _ in 0..4 {
            let tm = f.tm.clone();
            let tree = f.tree.clone();
            let deadlocks = deadlocks.clone();
            s.spawn(move || {
                for i in 0..300u32 {
                    let txn = tm.begin();
                    let k = nkey((i * 2) % 2000);
                    match tree.fetch(&txn, &k.value, FetchCond::Eq) {
                        Ok(FetchResult::Found(found)) => assert_eq!(found, k),
                        Ok(FetchResult::NotFound) => {
                            panic!("committed key {k:?} disappeared")
                        }
                        Err(Error::Deadlock { .. }) => {
                            deadlocks.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("reader: {e}"),
                    }
                    let _ = tm.commit(&txn);
                }
            });
        }
    });
    // Structure intact whatever interleaving happened.
    f.tree.check_structure().unwrap();
}

#[test]
fn readers_traverse_concurrently_with_smos() {
    // The paper's core concurrency claim: retrievals proceed while splits
    // are in progress — nothing hangs, nothing reads garbage.
    let f = fix_with(false, ariesim_btree::LockProtocol::DataOnly, 512);
    let txn = f.tm.begin();
    for i in 0..200u32 {
        f.tree.insert(&txn, &nkey(i * 10)).unwrap();
    }
    f.tm.commit(&txn).unwrap();

    std::thread::scope(|s| {
        // One writer driving constant splits.
        let tm = f.tm.clone();
        let tree = f.tree.clone();
        s.spawn(move || {
            let txn = tm.begin();
            for i in 0..3000u32 {
                tree.insert(&txn, &nkey(i * 10 + 1)).unwrap();
            }
            tm.commit(&txn).unwrap();
        });
        // Readers hammering fetches of stable keys.
        for r in 0..6 {
            let tm = f.tm.clone();
            let tree = f.tree.clone();
            s.spawn(move || {
                for i in 0..2000u32 {
                    let txn = tm.begin();
                    let k = nkey(((i + r * 313) % 200) * 10);
                    match tree.fetch(&txn, &k.value, FetchCond::Eq).unwrap() {
                        FetchResult::Found(found) => assert_eq!(found, k),
                        FetchResult::NotFound => panic!("lost committed key {k:?}"),
                    }
                    tm.commit(&txn).unwrap();
                }
            });
        }
    });
    let report = f.tree.check_structure().unwrap();
    assert_eq!(report.keys, 200 + 3000);
    assert!(f.stats.snapshot().smo_splits > 0);
}

#[test]
fn writer_conflict_on_same_keys_resolves_by_locks() {
    // Two transactions fight over the same key range; every outcome must be
    // one of: both serialized fine, or one picked as deadlock victim and
    // rolled back cleanly. Never a hang, never a broken tree.
    let f = fix_with(false, ariesim_btree::LockProtocol::DataOnly, 256);
    let txn = f.tm.begin();
    for i in 0..100u32 {
        f.tree.insert(&txn, &nkey(i * 2)).unwrap();
    }
    f.tm.commit(&txn).unwrap();

    let committed = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let tm = f.tm.clone();
            let tree = f.tree.clone();
            let committed = committed.clone();
            s.spawn(move || {
                'retry: for _attempt in 0..20 {
                    let txn = tm.begin();
                    for i in 0..30u32 {
                        let k = nkey(1 + 2 * ((i * (t + 3)) % 90));
                        let r = tree.insert(&txn, &k).or_else(|e| match e {
                            // Someone else inserted it and committed: fine.
                            Error::Internal(_) => Ok(()),
                            other => Err(other),
                        });
                        match r {
                            Ok(()) => {}
                            Err(Error::Deadlock { .. }) => {
                                tm.rollback(&txn).unwrap();
                                continue 'retry;
                            }
                            Err(e) => panic!("{e}"),
                        }
                    }
                    // Roll back on purpose half the time to exercise undo
                    // racing other writers.
                    if t % 2 == 0 {
                        tm.commit(&txn).unwrap();
                        committed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        tm.rollback(&txn).unwrap();
                    }
                    return;
                }
                panic!("starved: 20 deadlock retries");
            });
        }
    });
    f.tree.check_structure().unwrap();
}
