//! Property test: the ARIES/IM B+-tree against a `BTreeSet` model.
//!
//! Random batches of inserts/deletes, with some batches committed and some
//! rolled back, must leave the tree holding exactly the model's keys, in
//! order, with every structural invariant intact — across splits, page
//! deletions, root growth and collapse, and partial rollbacks.

mod common;

use ariesim_common::IndexKey;
use common::{fix, nkey};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Clone, Debug)]
enum Action {
    Insert(u32),
    Delete(u32),
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u32..600).prop_map(Action::Insert),
        (0u32..600).prop_map(Action::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_matches_btreeset_model(
        batches in proptest::collection::vec(
            (proptest::collection::vec(action(), 1..60), any::<bool>()),
            1..8,
        )
    ) {
        let f = fix();
        let mut model: BTreeSet<u32> = BTreeSet::new();

        for (actions, commit) in batches {
            let txn = f.tm.begin();
            let mut scratch = model.clone();
            for a in actions {
                match a {
                    Action::Insert(n) => {
                        if scratch.insert(n) {
                            f.tree.insert(&txn, &nkey(n)).unwrap();
                        }
                    }
                    Action::Delete(n) => {
                        if scratch.remove(&n) {
                            f.tree.delete(&txn, &nkey(n)).unwrap();
                        }
                    }
                }
            }
            if commit {
                f.tm.commit(&txn).unwrap();
                model = scratch;
            } else {
                f.tm.rollback(&txn).unwrap();
                // model unchanged: everything the batch did is undone
            }
            let keys = f.tree.scan_all_unlocked().unwrap();
            let want: Vec<IndexKey> = model.iter().map(|&n| nkey(n)).collect();
            prop_assert_eq!(&keys, &want, "after commit={}", commit);
            let report = f.tree.check_structure().unwrap();
            prop_assert_eq!(report.keys, model.len());
        }
    }

    #[test]
    fn partial_rollback_restores_midpoint(
        first in proptest::collection::vec(action(), 1..40),
        second in proptest::collection::vec(action(), 1..40),
    ) {
        let f = fix();
        let txn = f.tm.begin();
        let mut state: BTreeSet<u32> = BTreeSet::new();
        for a in first {
            match a {
                Action::Insert(n) => {
                    if state.insert(n) {
                        f.tree.insert(&txn, &nkey(n)).unwrap();
                    }
                }
                Action::Delete(n) => {
                    if state.remove(&n) {
                        f.tree.delete(&txn, &nkey(n)).unwrap();
                    }
                }
            }
        }
        let sp = txn.savepoint();
        let midpoint = state.clone();
        for a in second {
            match a {
                Action::Insert(n) => {
                    if state.insert(n) {
                        f.tree.insert(&txn, &nkey(n)).unwrap();
                    }
                }
                Action::Delete(n) => {
                    if state.remove(&n) {
                        f.tree.delete(&txn, &nkey(n)).unwrap();
                    }
                }
            }
        }
        f.tm.rollback_to(&txn, sp).unwrap();
        let keys = f.tree.scan_all_unlocked().unwrap();
        let want: Vec<IndexKey> = midpoint.iter().map(|&n| nkey(n)).collect();
        prop_assert_eq!(&keys, &want);
        f.tm.commit(&txn).unwrap();
        f.tree.check_structure().unwrap();
    }
}
