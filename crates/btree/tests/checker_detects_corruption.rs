//! The structural checker is the oracle every crash test leans on — so the
//! checker itself must be able to *fail*. These tests corrupt trees in
//! specific ways (through the page API, bypassing the protocol) and assert
//! the checker reports each violation.

mod common;

use ariesim_btree::node::{leaf_keys, NodeCell};
use ariesim_common::page::PageType;
use common::{fix, nkey};

/// Seed enough keys for a two-level tree and return the fixture.
fn two_level() -> common::Fix {
    let f = fix();
    let txn = f.tm.begin();
    for i in 0..1200u32 {
        f.tree.insert(&txn, &nkey(i)).unwrap();
    }
    f.tm.commit(&txn).unwrap();
    assert!(f.tree.check_structure().unwrap().height >= 1);
    f
}

#[test]
fn detects_out_of_order_keys() {
    let f = two_level();
    let leaf = f.tree.leaf_for_value(&nkey(600).value).unwrap();
    {
        let mut g = f.pool.fix_x(leaf).unwrap();
        // Swap two cells: breaks intra-page order.
        let a = g.cell(0).unwrap().to_vec();
        let b = g.cell(1).unwrap().to_vec();
        g.replace_cell_at(0, &b).unwrap();
        g.replace_cell_at(1, &a).unwrap();
    }
    assert!(f.tree.check_structure().is_err());
}

#[test]
fn detects_key_above_parent_high_key() {
    let f = two_level();
    // Put a key into the FIRST leaf that belongs far to the right.
    let first_leaf = f.tree.leaf_for_value(&nkey(0).value).unwrap();
    {
        let mut g = f.pool.fix_x(first_leaf).unwrap();
        let n = g.slot_count();
        let intruder = nkey(999_999);
        g.insert_cell_at(n, &intruder.encode()).unwrap();
    }
    let err = f.tree.check_structure().unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("high key") || msg.contains("out of order"),
        "unexpected error: {msg}"
    );
}

#[test]
fn detects_broken_leaf_chain() {
    let f = two_level();
    let leaf = f.tree.leaf_for_value(&nkey(0).value).unwrap();
    {
        let mut g = f.pool.fix_x(leaf).unwrap();
        g.set_next(ariesim_common::PageId::NULL); // sever the chain
    }
    let err = f.tree.check_structure().unwrap_err();
    assert!(format!("{err}").contains("next"), "{err}");
}

#[test]
fn detects_empty_nonroot_leaf() {
    let f = two_level();
    let leaf = f.tree.leaf_for_value(&nkey(0).value).unwrap();
    {
        let mut g = f.pool.fix_x(leaf).unwrap();
        let keys = leaf_keys(&g).unwrap();
        for _ in keys {
            g.delete_cell_at(0).unwrap();
        }
    }
    let err = f.tree.check_structure().unwrap_err();
    assert!(format!("{err}").contains("empty"), "{err}");
}

#[test]
fn detects_wrong_page_type_in_tree() {
    let f = two_level();
    let leaf = f.tree.leaf_for_value(&nkey(0).value).unwrap();
    {
        let mut g = f.pool.fix_x(leaf).unwrap();
        g.set_page_type(PageType::Heap);
    }
    assert!(f.tree.check_structure().is_err());
}

#[test]
fn detects_missing_high_key_on_middle_cell() {
    let f = two_level();
    // Strip the high key from the root's first cell (only the rightmost may
    // lack one).
    {
        let mut g = f.pool.fix_x(f.tree.root).unwrap();
        assert!(g.level() >= 1);
        let cell = ariesim_btree::node::node_cell(&g, 0).unwrap();
        g.replace_cell_at(
            0,
            &NodeCell {
                child: cell.child,
                high_key: None,
            }
            .encode(),
        )
        .unwrap();
    }
    let err = f.tree.check_structure().unwrap_err();
    assert!(format!("{err}").contains("high key"), "{err}");
}

#[test]
fn clean_tree_passes_repeatedly() {
    let f = two_level();
    for _ in 0..3 {
        let r = f.tree.check_structure().unwrap();
        assert_eq!(r.keys, 1200);
    }
}
