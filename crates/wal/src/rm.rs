//! Resource-manager interface and the per-transaction log chain writer.
//!
//! ARIES is organized around *resource managers*: the component that writes a
//! log record is the one that knows how to redo and undo it. The recovery
//! manager and the rollback driver only understand the envelope; they
//! dispatch bodies to the RM named by [`crate::RmId`] through the
//! [`ResourceManager`] trait.
//!
//! [`ChainLogger`] is the one writer of a transaction's backward log chain:
//! it owns the `last_lsn` cursor, so every record it appends is correctly
//! linked via `prev_lsn`. Both forward processing (through the transaction
//! manager) and undo (normal or restart) write through it — during restart
//! undo there is no live transaction object, so recovery reconstructs a
//! `ChainLogger` from the transaction table built by the analysis pass.

use crate::manager::LogManager;
use crate::record::{LogRecord, RecordKind, RmId};
use ariesim_common::{Lsn, PageBuf, PageId, Result, TxnId};

/// Writer of one transaction's log chain.
pub struct ChainLogger<'a> {
    pub txn: TxnId,
    /// LSN of the transaction's most recent log record.
    pub last_lsn: Lsn,
    /// True during restart undo: resource managers skip lock acquisition
    /// (locks are unnecessary then — no other transactions are running;
    /// paper §1.2 / §3).
    pub restart: bool,
    log: &'a LogManager,
}

impl<'a> ChainLogger<'a> {
    pub fn new(log: &'a LogManager, txn: TxnId, last_lsn: Lsn) -> ChainLogger<'a> {
        ChainLogger {
            txn,
            last_lsn,
            restart: false,
            log,
        }
    }

    pub fn for_restart(log: &'a LogManager, txn: TxnId, last_lsn: Lsn) -> ChainLogger<'a> {
        ChainLogger {
            txn,
            last_lsn,
            restart: true,
            log,
        }
    }

    pub fn log(&self) -> &'a LogManager {
        self.log
    }

    /// Append a redo-undo update record.
    pub fn update(&mut self, rm: RmId, page: PageId, body: Vec<u8>) -> Lsn {
        let lsn = self
            .log
            .append(&LogRecord::update(self.txn, self.last_lsn, rm, page, body));
        self.last_lsn = lsn;
        lsn
    }

    /// Append a compensation record whose `undo_next_lsn` is `undo_next`
    /// (normally the `prev_lsn` of the record being compensated).
    pub fn clr(&mut self, rm: RmId, page: PageId, undo_next: Lsn, body: Vec<u8>) -> Lsn {
        let lsn = self.log.append(&LogRecord::clr(
            self.txn,
            self.last_lsn,
            rm,
            page,
            undo_next,
            body,
        ));
        self.last_lsn = lsn;
        lsn
    }

    /// Append the dummy CLR that ends a nested top action started when the
    /// transaction's last LSN was `undo_next` (paper §1.2).
    pub fn dummy_clr(&mut self, undo_next: Lsn) -> Lsn {
        let lsn = self
            .log
            .append(&LogRecord::dummy_clr(self.txn, self.last_lsn, undo_next));
        self.last_lsn = lsn;
        lsn
    }

    /// Append a bodyless transaction-control record.
    pub fn control(&mut self, kind: RecordKind) -> Lsn {
        let lsn = self
            .log
            .append(&LogRecord::control(self.txn, self.last_lsn, kind));
        self.last_lsn = lsn;
        lsn
    }
}

/// A subsystem that owns a class of log-record bodies.
pub trait ResourceManager: Send + Sync {
    /// Which [`RmId`] this manager serves.
    fn rm_id(&self) -> RmId;

    /// Page-oriented redo: reapply `rec`'s change to `page`. The caller has
    /// the page latched exclusively and has already established
    /// `page_lsn < rec.lsn`; the implementation must not touch other pages
    /// (the paper's guarantee that restart redo never traverses the tree).
    /// The caller stamps `page_lsn = rec.lsn` afterwards.
    fn redo(&self, page: &mut PageBuf, rec: &LogRecord) -> Result<()>;

    /// Undo `rec` on behalf of a rollback. The implementation locates the
    /// affected data (page-oriented when possible, logically otherwise),
    /// applies the inverse change, and writes the CLR(s) — and any SMO
    /// records undo needs — through `logger`.
    fn undo(&self, logger: &mut ChainLogger<'_>, rec: &LogRecord) -> Result<()>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::LogOptions;
    use ariesim_common::stats::new_stats;
    use ariesim_common::tmp::TempDir;

    #[test]
    fn chain_logger_links_records() {
        let dir = TempDir::new("rm");
        let log = LogManager::open(&dir.file("wal"), LogOptions::default(), new_stats()).unwrap();
        let mut cl = ChainLogger::new(&log, TxnId(5), Lsn::NULL);
        let l1 = cl.update(RmId::Heap, PageId(1), b"a".to_vec());
        let l2 = cl.update(RmId::Heap, PageId(1), b"b".to_vec());
        let l3 = cl.clr(RmId::Heap, PageId(1), Lsn::NULL, b"c".to_vec());
        let l4 = cl.dummy_clr(l1);
        let l5 = cl.control(RecordKind::Commit);
        assert_eq!(cl.last_lsn, l5);
        let r2 = log.read(l2).unwrap();
        assert_eq!(r2.prev_lsn, l1);
        let r3 = log.read(l3).unwrap();
        assert_eq!(r3.prev_lsn, l2);
        assert_eq!(r3.kind, RecordKind::Clr);
        let r4 = log.read(l4).unwrap();
        assert_eq!(r4.kind, RecordKind::DummyClr);
        assert_eq!(r4.undo_next_lsn, l1);
        assert_eq!(log.read(l5).unwrap().prev_lsn, l4);
    }

    #[test]
    fn restart_flag_propagates() {
        let dir = TempDir::new("rm");
        let log = LogManager::open(&dir.file("wal"), LogOptions::default(), new_stats()).unwrap();
        assert!(!ChainLogger::new(&log, TxnId(1), Lsn::NULL).restart);
        assert!(ChainLogger::for_restart(&log, TxnId(1), Lsn::NULL).restart);
    }
}
