//! The log manager.
//!
//! Owns the log's durability boundary. Appends go into an in-memory tail
//! buffer; [`LogManager::flush_to`] makes everything up to (at least) a given
//! LSN durable — the operation the WAL protocol and commit processing force.
//! A crash loses exactly the unflushed tail, which is what the crash tests
//! rely on: dropping the manager without flushing and reopening the file
//! reproduces the post-crash stable state.
//!
//! The manager also keeps the whole durable log memory-resident. At the
//! scale of this reproduction (logs of at most a few hundred MB) this is a
//! deliberate simplification that changes no protocol behaviour: reads
//! during rollback and restart hit the same byte image they would read from
//! disk.

use crate::frame::{self, FrameRead, FIRST_LSN, LOG_MAGIC};
use crate::record::{LogRecord, RecordKind};
use ariesim_common::stats::{Bump, StatsHandle};
use ariesim_fault::crash_point;
use ariesim_obs::{EventKind, ModeTag, Obs, ObsHandle};
use ariesim_common::{Error, Lsn, Result};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Tuning and durability options.
#[derive(Clone, Debug, Default)]
pub struct LogOptions {
    /// Call `sync_data` after each flush. Off by default: the tests simulate
    /// crashes at the process level, where "written to the file" is durable.
    pub fsync: bool,
}

struct Inner {
    file: File,
    /// Complete log image, magic included: `image[0..durable_end]` mirrors
    /// the file; `image[durable_end..]` is the unflushed tail.
    image: Vec<u8>,
    /// Everything below this offset is stable.
    durable_end: Lsn,
    /// LSN the next appended record will get (= image.len()).
    tail: Lsn,
    /// LSN of the most recently appended record.
    last_lsn: Lsn,
}

/// The write-ahead log manager. Thread-safe; all methods take `&self`.
pub struct LogManager {
    inner: Mutex<Inner>,
    /// Mirror of `Inner::durable_end`, updated under the inner lock but
    /// readable without it: the fast path of [`LogManager::flush_to`] (and
    /// [`LogManager::flushed_lsn`]) must not serialize behind an in-flight
    /// flush when the requested LSN is already durable — the WAL-rule check
    /// on every page write-back hits this path constantly.
    flushed: AtomicU64,
    master_path: PathBuf,
    opts: LogOptions,
    stats: StatsHandle,
    obs: ObsHandle,
}

impl LogManager {
    /// Open (or create) the log at `path`. On open, scans for a torn tail and
    /// truncates the trustworthy image there, exactly as restart would.
    pub fn open(path: &Path, opts: LogOptions, stats: StatsHandle) -> Result<LogManager> {
        LogManager::open_with_obs(path, opts, stats, Obs::disabled())
    }

    /// [`LogManager::open`] with an explicit observability handle.
    pub fn open_with_obs(
        path: &Path,
        opts: LogOptions,
        stats: StatsHandle,
        obs: ObsHandle,
    ) -> Result<LogManager> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        if raw.is_empty() {
            file.write_all(LOG_MAGIC)?;
            raw = LOG_MAGIC.to_vec();
        } else if raw.len() < LOG_MAGIC.len() || &raw[..LOG_MAGIC.len()] != LOG_MAGIC {
            return Err(Error::CorruptLog {
                lsn: Lsn::NULL,
                reason: "bad log file magic".into(),
            });
        }
        // Find the end of the valid log (torn-tail scan) and discard beyond.
        let mut at = FIRST_LSN;
        let mut last_lsn = Lsn::NULL;
        loop {
            match frame::read_frame(&raw, at)? {
                FrameRead::Ok { next, .. } => {
                    last_lsn = at;
                    at = next;
                }
                FrameRead::End { at: end } => {
                    raw.truncate(end.0 as usize);
                    break;
                }
            }
        }
        file.set_len(raw.len() as u64)?;
        let end = Lsn(raw.len() as u64);
        Ok(LogManager {
            inner: Mutex::new(Inner {
                file,
                image: raw,
                durable_end: end,
                tail: end,
                last_lsn,
            }),
            flushed: AtomicU64::new(end.0),
            master_path: path.with_extension("master"),
            opts,
            stats,
            obs,
        })
    }

    /// Append a record (buffered, not yet durable). Returns its LSN.
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        let body = rec.encode();
        let framed = frame::encode_frame(&body);
        let mut g = self.inner.lock();
        let lsn = g.tail;
        g.image.extend_from_slice(&framed);
        g.tail = Lsn(g.image.len() as u64);
        g.last_lsn = lsn;
        crash_point!("wal.append.tail");
        self.stats.log_records.bump();
        self.stats.log_bytes.add(framed.len() as u64);
        // CLRs (including the dummy CLRs ending nested top actions) are the
        // trace hooks for rollback progress; every write site funnels here.
        if matches!(rec.kind, RecordKind::Clr | RecordKind::DummyClr) {
            self.obs
                .event(EventKind::ClrWrite, ModeTag::None, rec.txn.0, 0, lsn.0);
        }
        lsn
    }

    /// Make every record with LSN ≤ `lsn` durable. Group-flushes the whole
    /// tail (later records ride along, as in real group commit).
    pub fn flush_to(&self, lsn: Lsn) -> Result<()> {
        // Fast path: already durable. Must not take the inner lock, or every
        // WAL-rule check during page write-back would serialize behind an
        // in-flight group flush. `flushed` only ever grows, so a stale read
        // is safe — we just fall through to the locked path.
        if lsn.0 < self.flushed.load(Ordering::Acquire) {
            return Ok(());
        }
        let mut g = self.inner.lock();
        if lsn < g.durable_end {
            return Ok(());
        }
        self.flush_locked(&mut g)
    }

    /// Make the entire log durable.
    pub fn flush_all(&self) -> Result<()> {
        let mut g = self.inner.lock();
        if g.durable_end == g.tail {
            return Ok(());
        }
        self.flush_locked(&mut g)
    }

    fn flush_locked(&self, g: &mut Inner) -> Result<()> {
        let from = g.durable_end.0 as usize;
        let to = g.tail.0 as usize;
        if from == to {
            return Ok(());
        }
        let force = self.obs.timer();
        crash_point!("wal.flush.begin");
        g.file.seek(SeekFrom::Start(from as u64))?;
        let slice: Vec<u8> = g.image[from..to].to_vec();
        // Two writes with a crash point between them: crashing at
        // "wal.flush.mid" leaves a genuinely torn tail (first half of the
        // slice on disk, durable_end not advanced) for the torn-tail scan.
        let half = slice.len() / 2;
        g.file.write_all(&slice[..half])?;
        crash_point!("wal.flush.mid");
        g.file.write_all(&slice[half..])?;
        if self.opts.fsync {
            g.file.sync_data()?;
        }
        crash_point!("wal.flush.end");
        g.durable_end = g.tail;
        self.flushed.store(g.durable_end.0, Ordering::Release);
        self.stats.log_forces.bump();
        self.obs.hist.log_force.record_since(force);
        self.obs.event(
            EventKind::LogForce,
            ModeTag::None,
            0,
            0,
            (to - from) as u64,
        );
        Ok(())
    }

    /// LSN below which everything is stable.
    pub fn flushed_lsn(&self) -> Lsn {
        Lsn(self.flushed.load(Ordering::Acquire))
    }

    /// LSN of the most recently appended record; NULL if the log is empty.
    pub fn last_lsn(&self) -> Lsn {
        self.inner.lock().last_lsn
    }

    /// LSN the next append will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.inner.lock().tail
    }

    /// Read and decode the record at `lsn` (flushed or still buffered —
    /// rollback during normal processing reads records that may not yet be
    /// durable).
    pub fn read(&self, lsn: Lsn) -> Result<LogRecord> {
        let g = self.inner.lock();
        if lsn.is_null() || lsn < FIRST_LSN || lsn >= g.tail {
            return Err(Error::CorruptLog {
                lsn,
                reason: format!("lsn out of range (log ends at {})", g.tail),
            });
        }
        match frame::read_frame(&g.image, lsn)? {
            FrameRead::Ok { body, .. } => LogRecord::decode(lsn, body),
            FrameRead::End { .. } => Err(Error::CorruptLog {
                lsn,
                reason: "no valid frame at lsn".into(),
            }),
        }
    }

    /// Iterate records in LSN order starting at `from` (or the log start if
    /// `from` is NULL). Each `next()` re-acquires the internal lock, so the
    /// iterator may observe records appended after it was created.
    pub fn scan(&self, from: Lsn) -> LogIter<'_> {
        LogIter {
            mgr: self,
            at: if from.is_null() { FIRST_LSN } else { from },
        }
    }

    /// First LSN ever (the log start).
    pub fn first_lsn(&self) -> Lsn {
        FIRST_LSN
    }

    // --- master record ---------------------------------------------------

    /// Durably record the LSN of the latest complete checkpoint's begin
    /// record. Written atomically via rename.
    pub fn write_master(&self, ckpt_lsn: Lsn) -> Result<()> {
        crash_point!("wal.master.before");
        let tmp = self.master_path.with_extension("master.tmp");
        let mut body = ckpt_lsn.0.to_le_bytes().to_vec();
        let crc = ariesim_common::codec::crc32c(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        std::fs::write(&tmp, &body)?;
        crash_point!("wal.master.tmp_written");
        std::fs::rename(&tmp, &self.master_path)?;
        crash_point!("wal.master.after");
        Ok(())
    }

    /// Read the master record; NULL if none has ever been written.
    pub fn read_master(&self) -> Result<Lsn> {
        let raw = match std::fs::read(&self.master_path) {
            Ok(r) => r,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Lsn::NULL),
            Err(e) => return Err(e.into()),
        };
        if raw.len() != 12 {
            return Err(Error::CorruptLog {
                lsn: Lsn::NULL,
                reason: "bad master record length".into(),
            });
        }
        let lsn = ariesim_common::codec::u64_at(&raw, 0);
        let crc = ariesim_common::codec::u32_at(&raw, 8);
        if ariesim_common::codec::crc32c(&raw[0..8]) != crc {
            return Err(Error::CorruptLog {
                lsn: Lsn::NULL,
                reason: "master record checksum mismatch".into(),
            });
        }
        Ok(Lsn(lsn))
    }
}

/// Iterator over log records; see [`LogManager::scan`].
pub struct LogIter<'a> {
    mgr: &'a LogManager,
    at: Lsn,
}

impl LogIter<'_> {
    /// LSN the next `next()` call will read.
    pub fn position(&self) -> Lsn {
        self.at
    }
}

impl Iterator for LogIter<'_> {
    type Item = Result<LogRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        let g = self.mgr.inner.lock();
        if self.at >= g.tail {
            return None;
        }
        match frame::read_frame(&g.image, self.at) {
            Ok(FrameRead::Ok { body, .. }) => {
                let rec = LogRecord::decode(self.at, body);
                self.at = Lsn(self.at.0 + frame::frame_len(body.len()));
                Some(rec)
            }
            Ok(FrameRead::End { .. }) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordKind, RmId};
    use ariesim_common::stats::new_stats;
    use ariesim_common::tmp::TempDir;
    use ariesim_common::{PageId, TxnId};

    fn mgr(dir: &TempDir) -> LogManager {
        LogManager::open(&dir.file("wal"), LogOptions::default(), new_stats()).unwrap()
    }

    fn upd(txn: u64, prev: Lsn, body: &[u8]) -> LogRecord {
        LogRecord::update(TxnId(txn), prev, RmId::Heap, PageId(1), body.to_vec())
    }

    #[test]
    fn append_read_roundtrip() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let l1 = m.append(&upd(1, Lsn::NULL, b"one"));
        let l2 = m.append(&upd(1, l1, b"two"));
        assert!(l1 < l2);
        let r = m.read(l2).unwrap();
        assert_eq!(r.prev_lsn, l1);
        assert_eq!(r.body, b"two");
        assert_eq!(m.last_lsn(), l2);
    }

    #[test]
    fn scan_returns_all_in_order() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let mut lsns = Vec::new();
        let mut prev = Lsn::NULL;
        for i in 0..10u8 {
            prev = m.append(&upd(1, prev, &[i]));
            lsns.push(prev);
        }
        let seen: Vec<Lsn> = m.scan(Lsn::NULL).map(|r| r.unwrap().lsn).collect();
        assert_eq!(seen, lsns);
        // Scan from the middle.
        let seen: Vec<Lsn> = m.scan(lsns[4]).map(|r| r.unwrap().lsn).collect();
        assert_eq!(seen, &lsns[4..]);
    }

    #[test]
    fn unflushed_tail_lost_on_reopen() {
        let dir = TempDir::new("wal");
        let path = dir.file("wal");
        let stats = new_stats();
        let m = LogManager::open(&path, LogOptions::default(), stats.clone()).unwrap();
        let l1 = m.append(&upd(1, Lsn::NULL, b"durable"));
        m.flush_to(l1).unwrap();
        let l2 = m.append(&upd(1, l1, b"lost"));
        assert!(m.read(l2).is_ok()); // readable while buffered
        drop(m); // crash: no flush
        let m2 = LogManager::open(&path, LogOptions::default(), new_stats()).unwrap();
        assert_eq!(m2.last_lsn(), l1);
        assert!(m2.read(l2).is_err());
        let survived: Vec<_> = m2.scan(Lsn::NULL).map(|r| r.unwrap()).collect();
        assert_eq!(survived.len(), 1);
        assert_eq!(survived[0].body, b"durable");
    }

    #[test]
    fn flush_is_group_flush() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let l1 = m.append(&upd(1, Lsn::NULL, b"a"));
        let l2 = m.append(&upd(1, l1, b"b"));
        m.flush_to(l1).unwrap();
        // l2 rode along.
        assert!(m.flushed_lsn() > l2);
    }

    #[test]
    fn flush_to_already_durable_is_noop() {
        let dir = TempDir::new("wal");
        let stats = new_stats();
        let m = LogManager::open(&dir.file("wal"), LogOptions::default(), stats.clone()).unwrap();
        let l1 = m.append(&upd(1, Lsn::NULL, b"a"));
        m.flush_to(l1).unwrap();
        let forces = stats.snapshot().log_forces;
        m.flush_to(l1).unwrap();
        assert_eq!(stats.snapshot().log_forces, forces);
    }

    #[test]
    fn noop_flush_does_not_serialize_behind_inflight_flush() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let l1 = m.append(&upd(1, Lsn::NULL, b"a"));
        m.flush_to(l1).unwrap();
        // Simulate an in-flight flush by holding the inner lock; a flush_to
        // for an already-durable LSN must return without acquiring it.
        let _held = m.inner.lock();
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|s| {
            s.spawn(|| {
                m.flush_to(l1).unwrap();
                tx.send(()).unwrap();
            });
            rx.recv_timeout(std::time::Duration::from_secs(2))
                .expect("no-op flush blocked behind held inner lock");
        });
    }

    #[test]
    fn reopen_resumes_lsn_sequence() {
        let dir = TempDir::new("wal");
        let path = dir.file("wal");
        let m = LogManager::open(&path, LogOptions::default(), new_stats()).unwrap();
        let l1 = m.append(&upd(1, Lsn::NULL, b"a"));
        m.flush_all().unwrap();
        drop(m);
        let m2 = LogManager::open(&path, LogOptions::default(), new_stats()).unwrap();
        let l2 = m2.append(&upd(2, Lsn::NULL, b"b"));
        assert!(l2 > l1);
        assert_eq!(m2.read(l1).unwrap().body, b"a");
        assert_eq!(m2.read(l2).unwrap().body, b"b");
    }

    #[test]
    fn torn_tail_truncated_on_open() {
        let dir = TempDir::new("wal");
        let path = dir.file("wal");
        let m = LogManager::open(&path, LogOptions::default(), new_stats()).unwrap();
        let l1 = m.append(&upd(1, Lsn::NULL, b"keep"));
        m.append(&upd(1, l1, b"torn-away"));
        m.flush_all().unwrap();
        drop(m);
        // Tear the last record's final byte off.
        let mut raw = std::fs::read(&path).unwrap();
        raw.truncate(raw.len() - 1);
        std::fs::write(&path, &raw).unwrap();
        let m2 = LogManager::open(&path, LogOptions::default(), new_stats()).unwrap();
        let recs: Vec<_> = m2.scan(Lsn::NULL).map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].body, b"keep");
        // New appends land after the truncation point.
        let l3 = m2.append(&upd(2, Lsn::NULL, b"new"));
        assert_eq!(m2.read(l3).unwrap().body, b"new");
    }

    #[test]
    fn master_record_roundtrip() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        assert_eq!(m.read_master().unwrap(), Lsn::NULL);
        m.write_master(Lsn(777)).unwrap();
        assert_eq!(m.read_master().unwrap(), Lsn(777));
        m.write_master(Lsn(888)).unwrap();
        assert_eq!(m.read_master().unwrap(), Lsn(888));
    }

    #[test]
    fn read_null_or_out_of_range_fails() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        assert!(m.read(Lsn::NULL).is_err());
        assert!(m.read(Lsn(1 << 40)).is_err());
    }

    #[test]
    fn control_records_roundtrip_all_kinds() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        for kind in [
            RecordKind::Begin,
            RecordKind::Commit,
            RecordKind::Abort,
            RecordKind::End,
        ] {
            let lsn = m.append(&LogRecord::control(TxnId(3), Lsn::NULL, kind));
            assert_eq!(m.read(lsn).unwrap().kind, kind);
        }
    }

    #[test]
    fn concurrent_appends_get_distinct_lsns() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let lsns: Vec<Lsn> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let m = &m;
                    s.spawn(move || {
                        (0..100)
                            .map(|i| m.append(&upd(t, Lsn::NULL, &[t as u8, i as u8])))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let mut sorted = lsns.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 400);
        assert_eq!(m.scan(Lsn::NULL).count(), 400);
    }
}
