//! The log manager.
//!
//! Owns the log's durability boundary, as a two-stage pipeline:
//!
//! 1. **Lock-free append.** An appender claims its (LSN, byte-range) with a
//!    single `fetch_add` into the in-memory segment ring ([`crate::buffer`]),
//!    copies its pre-encoded frame into the reserved slice without any lock,
//!    and publishes completion via the ring's per-segment filled counters.
//!    The old design serialized every append (and its memcpy) behind one
//!    mutex; now the only shared-section work per append is two atomic RMWs.
//!
//! 2. **Group flush.** [`LogManager::flush_to`] makes everything up to (at
//!    least) a given LSN durable — the operation the WAL protocol and commit
//!    processing force. A drain step moves the ring's fully *published*
//!    prefix into the durable image (spinning to a stable watermark across
//!    torn multi-segment reservations, and advancing a frame-aligned
//!    boundary so no torn frame is ever written), then one `write_all` +
//!    optional fsync covers every waiter whose LSN rode along. Two modes:
//!
//!    * **leader-based** (default): the first committer to win `try_lock`
//!      flushes for everyone queued on the commit barrier; losers spin
//!      briefly on the durable mirror, then park on a futex-style
//!      [`Parker`] and re-elect on timeout, so no dedicated thread is
//!      needed;
//!    * **dedicated flusher** (`LogOptions::flusher`): an adaptive batch
//!      window. While commits arrive one at a time, the committer flushes
//!      inline immediately — an empty queue never waits. While commits
//!      overlap, committers enqueue on the commit barrier and park with no
//!      timeout; the `wal-flusher` thread flushes the whole queue in one
//!      write. On multicore the batch is whatever enqueued while the
//!      previous flush was in flight (the write itself is the coalescing
//!      window); on a single core — where commits arrive strictly
//!      serialized and could never overlap a microsecond write — the
//!      flusher coalesces a non-filled batch with one bounded nap, which
//!      doubles as the probe that detects when commits stop overlapping.
//!
//! A crash loses exactly the unflushed tail, which is what the crash tests
//! rely on: dropping the manager without flushing and reopening the file
//! reproduces the post-crash stable state (the flusher thread is joined
//! without flushing on drop for the same reason).
//!
//! The manager also keeps the whole durable log memory-resident. At the
//! scale of this reproduction (logs of at most a few hundred MB) this is a
//! deliberate simplification that changes no protocol behaviour: reads
//! during rollback and restart hit the same byte image they would read from
//! disk.

use crate::buffer::LogBuffer;
use crate::frame::{self, FrameRead, FIRST_LSN, LOG_MAGIC};
use crate::record::{LogRecord, RecordKind};
use ariesim_common::stats::{Bump, StatsHandle};
use ariesim_fault::crash_point;
use ariesim_obs::{EventKind, ModeTag, Obs, ObsHandle, SpanKind};
use ariesim_common::{Error, Lsn, Result};
use parking_lot::{sched, Mutex, Parker};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
// The durable-LSN mirror and the ring watermarks are model-checkable facade
// atomics: their protocol against concurrent appenders/flushers is covered
// by `crates/model`'s WAL harnesses.
use ariesim_common::msync::AtomicU64;
use std::sync::atomic::{AtomicBool, AtomicU64 as PlainAtomicU64, Ordering};

/// Tuning and durability options.
#[derive(Clone, Debug)]
pub struct LogOptions {
    /// Call `sync_data` after each flush. Off by default: the tests simulate
    /// crashes at the process level, where "written to the file" is durable.
    pub fsync: bool,
    /// Run a dedicated flusher thread; committers never do log I/O
    /// themselves. Off by default: the leader-based mode needs no extra
    /// thread and is what the deterministic model checker runs (a real
    /// thread outside the controller's view would break the schedule).
    pub flusher: bool,
    /// Number of ring segments (power of two).
    pub ring_segments: u64,
    /// Bytes per ring segment (power of two). Total ring capacity bounds
    /// the largest single record.
    pub ring_segment_bytes: u64,
}

impl Default for LogOptions {
    fn default() -> LogOptions {
        LogOptions {
            fsync: false,
            flusher: false,
            ring_segments: 16,
            ring_segment_bytes: 64 << 10,
        }
    }
}

/// How long a leader-mode rider parks before re-trying the leader election
/// (the leader may have exited between flushing and this rider's enqueue).
const RIDER_RETRY: Duration = Duration::from_micros(100);

/// Bounded busy-poll before parking, on both sides of the group-commit
/// handoff. On fast storage a whole batch completes in a few microseconds —
/// less than a park/unpark round trip — so riders poll the durable mirror
/// and the idle flusher polls the barrier this many times first.
const SPIN_POLLS: u32 = 500;

/// Queue depth that ends a coalescing nap early: once this many committers
/// wait on the barrier the batch is worth flushing without running out the
/// clock. See [`COALESCE_NAP`].
const GROUP_FILL: usize = 8;

/// Upper bound of the single-core adaptive batch window. On one CPU,
/// commits arrive strictly serialized, so a batch can only form while the
/// flusher yields the CPU and lets committers run up to their commit
/// points; the window normally closes itself the moment the barrier stops
/// growing across a yield, and this bound caps it in case yields keep
/// returning immediately. Multicore machines skip the window entirely —
/// there, batches form naturally from committers that enqueue while a
/// flush is in flight.
const COALESCE_NAP: Duration = Duration::from_micros(250);

/// In the solo regime, every `SOLO_PROBE_PERIOD`-th commit enqueues on the
/// barrier instead of flushing inline — a deterministic concurrency probe.
/// On a single CPU, overlapping commits still execute strictly one after
/// another, so the inline `try_lock` below almost never collides and cannot
/// be the only promotion signal: a probe that gets woken by *another
/// committer's* inline flush proves concurrency, and that flush promotes
/// the regime (see the `woken > 0` check in [`LogManager::flusher_wait`]).
/// A genuinely single-threaded workload pays one flusher handoff per
/// period (the batch window closes as soon as the prober parks); a
/// concurrent one is promoted within one period of the first probe.
const SOLO_PROBE_PERIOD: u64 = 256;

/// Whether this machine has a single CPU. Busy-spinning is strictly
/// counterproductive there (a spinner only delays the very thread it waits
/// for) and batches cannot form without the flusher yielding the CPU, so
/// both the spin-poll counts and the coalescing nap key off this.
fn single_core() -> bool {
    static ONE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ONE.get_or_init(|| std::thread::available_parallelism().map_or(true, |n| n.get() == 1))
}

/// [`SPIN_POLLS`], but zero on a single-CPU machine (see [`single_core`])
/// and zero under the model checker (each poll is a schedule point;
/// hundreds per commit would blow up the explored tree without adding
/// interleavings — the park that follows is already a schedule point).
fn spin_polls() -> u32 {
    if sched::thread_armed() || single_core() {
        return 0;
    }
    SPIN_POLLS
}

struct Inner {
    file: File,
    /// Complete drained log image, magic included: `image[0..durable_end]`
    /// mirrors the file; `image[durable_end..]` is the unflushed tail.
    /// Bytes still in the ring (published or in-flight) are *not* here yet.
    image: Vec<u8>,
    /// Everything below this offset is stable. Always frame-aligned.
    durable_end: Lsn,
    /// Drained watermark (= image.len() = the ring's `drained`).
    tail: Lsn,
    /// Largest frame boundary ≤ `tail`. A multi-segment frame can drain in
    /// pieces, so `tail` may rest mid-frame; flushing past `aligned` would
    /// write a torn frame and falsely ack durability for it.
    aligned: Lsn,
}

/// One committer waiting on the barrier: its LSN and how to wake it.
type Waiter = (u64, Arc<Parker>);

/// The commit barrier: committers whose LSN is not yet durable enqueue
/// here; whoever flushes (leader or flusher thread) wakes the satisfied.
#[derive(Default)]
struct Barrier {
    q: Mutex<Vec<Waiter>>,
    /// Wakes the dedicated flusher thread (flusher mode only).
    flusher: Parker,
}

/// State shared between committer threads and the optional flusher thread.
struct Shared {
    inner: Mutex<Inner>,
    /// The lock-free append ring.
    buf: LogBuffer,
    /// Mirror of `Inner::durable_end`, updated under the inner lock but
    /// readable without it: the fast path of [`LogManager::flush_to`] (and
    /// [`LogManager::flushed_lsn`]) must not serialize behind an in-flight
    /// flush when the requested LSN is already durable — the WAL-rule check
    /// on every page write-back hits this path constantly.
    flushed: AtomicU64,
    /// LSN of the most recently appended record (largest start LSN);
    /// `Lsn::NULL` (0) if the log is empty, so `fetch_max` is sound.
    last_lsn: PlainAtomicU64,
    barrier: Barrier,
    /// Set by `Drop`; tells the flusher thread to exit *without* flushing
    /// (a drop is a simulated crash: the unflushed tail must be lost).
    shutdown: AtomicBool,
    /// Latched by the flusher thread on an I/O error; parked committers
    /// check it so the error propagates instead of hanging them.
    failed: AtomicBool,
    /// Flusher-mode regime hint: true while commits overlap (batches are
    /// forming), false while they arrive one at a time. Solo committers
    /// flush inline instead of paying two thread handoffs per commit; the
    /// flusher demotes after a streak of single-rider batches, and an
    /// inline flush that finds a parked rider (or a `try_lock` collision,
    /// or a periodic probe — see [`SOLO_PROBE_PERIOD`]) promotes. Starts
    /// true so a burst-from-the-start workload batches immediately and a
    /// solo workload pays a few naps to discover it is alone.
    regime_busy: AtomicBool,
    /// Count of solo-regime inline flushes, for the periodic concurrency
    /// probe ([`SOLO_PROBE_PERIOD`]). Plain (not model-instrumented): a
    /// scheduling heuristic, never a correctness carrier.
    solo_flushes: PlainAtomicU64,
    flusher_err: std::sync::Mutex<Option<String>>,
    master_path: PathBuf,
    opts: LogOptions,
    stats: StatsHandle,
    obs: ObsHandle,
}

/// The write-ahead log manager. Thread-safe; all methods take `&self`.
pub struct LogManager {
    sh: Arc<Shared>,
    flusher: Option<std::thread::JoinHandle<()>>,
}

thread_local! {
    /// Per-thread parker reused across `flush_to` calls (a thread waits on
    /// at most one flush at a time). A stale wakeup from a previous round
    /// only makes the next park return early; every wait loops on its
    /// predicate, so that is harmless.
    static PARKER: Arc<Parker> = Arc::new(Parker::new());
}

impl LogManager {
    /// Open (or create) the log at `path`. On open, scans for a torn tail and
    /// truncates the trustworthy image there, exactly as restart would.
    pub fn open(path: &Path, opts: LogOptions, stats: StatsHandle) -> Result<LogManager> {
        LogManager::open_with_obs(path, opts, stats, Obs::disabled())
    }

    /// [`LogManager::open`] with an explicit observability handle.
    pub fn open_with_obs(
        path: &Path,
        opts: LogOptions,
        stats: StatsHandle,
        obs: ObsHandle,
    ) -> Result<LogManager> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        if raw.is_empty() {
            file.write_all(LOG_MAGIC)?;
            raw = LOG_MAGIC.to_vec();
        } else if raw.len() < LOG_MAGIC.len() || &raw[..LOG_MAGIC.len()] != LOG_MAGIC {
            return Err(Error::CorruptLog {
                lsn: Lsn::NULL,
                reason: "bad log file magic".into(),
            });
        }
        // Find the end of the valid log (torn-tail scan) and discard beyond.
        let mut at = FIRST_LSN;
        let mut last_lsn = Lsn::NULL;
        loop {
            match frame::read_frame(&raw, at)? {
                FrameRead::Ok { next, .. } => {
                    last_lsn = at;
                    at = next;
                }
                FrameRead::End { at: end } => {
                    raw.truncate(end.0 as usize);
                    break;
                }
            }
        }
        file.set_len(raw.len() as u64)?;
        let end = Lsn(raw.len() as u64);
        let sh = Arc::new(Shared {
            inner: Mutex::new(Inner {
                file,
                image: raw,
                durable_end: end,
                tail: end,
                aligned: end,
            }),
            buf: LogBuffer::new(end.0, opts.ring_segment_bytes, opts.ring_segments),
            flushed: AtomicU64::new(end.0),
            last_lsn: PlainAtomicU64::new(last_lsn.0),
            barrier: Barrier::default(),
            shutdown: AtomicBool::new(false),
            failed: AtomicBool::new(false),
            regime_busy: AtomicBool::new(true),
            solo_flushes: PlainAtomicU64::new(0),
            flusher_err: std::sync::Mutex::new(None),
            master_path: path.with_extension("master"),
            opts,
            stats,
            obs,
        });
        let flusher = if sh.opts.flusher {
            let s = Arc::clone(&sh);
            Some(
                std::thread::Builder::new()
                    .name("wal-flusher".into())
                    .spawn(move || Shared::flusher_main(&s))
                    .map_err(|e| Error::Internal(format!("spawn wal-flusher: {e}")))?,
            )
        } else {
            None
        };
        Ok(LogManager { sh, flusher })
    }

    /// Append a record (buffered, not yet durable). Returns its LSN.
    ///
    /// Lock-free: encoding and checksumming happen fully outside any shared
    /// section, the (LSN, range) claim is one `fetch_add`, and the frame
    /// copy goes straight into the reserved ring slice.
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        let sh = &*self.sh;
        let _span = sh.obs.span(SpanKind::WalAppend, rec.txn.0, 0);
        let body = rec.encode();
        let len = frame::frame_len(body.len());
        let framed = frame::encode_frame(&body);
        // The reservation is taken for `frame_len` bytes and the copy is of
        // the encoded frame; they must agree exactly or the log would have
        // a permanent hole or overlap at this LSN.
        assert_eq!(framed.len() as u64, len, "reserved length != framed length");
        assert!(
            len <= sh.buf.max_reservation(),
            "log record ({len} bytes) exceeds the ring's largest reservation ({}); raise LogOptions::ring_*",
            sh.buf.max_reservation()
        );
        let start = sh.buf.reserve(len);
        crash_point!("wal.group.reserve");
        // Backpressure: wait for the range `cap` below to be drained. Help
        // drain instead of only spinning, so a quiescent flusher (or no
        // flusher at all) cannot deadlock an appender against a full ring.
        while !sh.buf.has_space(start + len) {
            if let Some(mut g) = sh.inner.try_lock() {
                sh.drain_locked(&mut g);
            }
            ariesim_common::yield_point!();
        }
        sh.buf.copy_in(start, &framed);
        sh.buf.publish(start, len);
        crash_point!("wal.append.tail");
        // ordering: Relaxed — monotone register, no payload to publish (the
        // record bytes are published by the ring's Release in `publish`).
        sh.last_lsn.fetch_max(start, Ordering::Relaxed);
        sh.stats.log_records.bump();
        sh.stats.log_bytes.add(len);
        // CLRs (including the dummy CLRs ending nested top actions) are the
        // trace hooks for rollback progress; every write site funnels here.
        if matches!(rec.kind, RecordKind::Clr | RecordKind::DummyClr) {
            sh.obs
                .event(EventKind::ClrWrite, ModeTag::None, rec.txn.0, 0, start);
        }
        crash_point!("wal.group.publish");
        Lsn(start)
    }

    /// Make every record with LSN ≤ `lsn` durable. Group commit: one flush
    /// covers every committer whose LSN rode along.
    pub fn flush_to(&self, lsn: Lsn) -> Result<()> {
        // Fast path: already durable. Must not take the inner lock, or every
        // WAL-rule check during page write-back would serialize behind an
        // in-flight group flush. `flushed` only ever grows, so a stale read
        // is safe — we just fall through to the slow path.
        // ordering: Acquire pairs with the Release store after fsync
        if lsn.0 < self.sh.flushed.load(Ordering::Acquire) {
            return Ok(());
        }
        if self.sh.opts.flusher {
            self.sh.flusher_wait(lsn)
        } else {
            self.sh.group_wait(lsn)
        }
    }

    /// Make the entire published log durable. (A reservation still being
    /// copied by a concurrent appender does not ride along — this drains
    /// the published prefix, never spins for in-flight appends.)
    pub fn flush_all(&self) -> Result<()> {
        let sh = &*self.sh;
        let mut g = sh.inner.lock();
        while sh.drain_locked(&mut g) {}
        sh.flush_locked(&mut g)
    }

    /// LSN below which everything is stable.
    pub fn flushed_lsn(&self) -> Lsn {
        // ordering: Acquire pairs with the Release store after fsync
        Lsn(self.sh.flushed.load(Ordering::Acquire))
    }

    /// Largest LSN such that every byte below it is published in the ring
    /// (or already drained). Exposed for the model harnesses: the durable
    /// mirror must never read ahead of this watermark.
    pub fn published_lsn(&self) -> Lsn {
        Lsn(self.sh.buf.published())
    }

    /// LSN of the most recently appended record; NULL if the log is empty.
    pub fn last_lsn(&self) -> Lsn {
        // ordering: Relaxed — monotone register (see the store in `append`)
        Lsn(self.sh.last_lsn.load(Ordering::Relaxed))
    }

    /// LSN the next append will receive (the ring's reservation watermark).
    pub fn next_lsn(&self) -> Lsn {
        Lsn(self.sh.buf.reserved())
    }

    /// Read and decode the record at `lsn` (flushed or still buffered —
    /// rollback during normal processing reads records that may not yet be
    /// durable). A record still in the ring is drained into the image first.
    pub fn read(&self, lsn: Lsn) -> Result<LogRecord> {
        let sh = &*self.sh;
        let end = sh.buf.reserved();
        if lsn.is_null() || lsn < FIRST_LSN || lsn.0 >= end {
            return Err(Error::CorruptLog {
                lsn,
                reason: format!("lsn out of range (log ends at {})", Lsn(end)),
            });
        }
        let mut g = sh.inner.lock();
        // Spin-to-stable: the frame at `lsn` may still be mid-publish by a
        // concurrent appender (which needs no lock to finish).
        while g.aligned <= lsn {
            let progressed = sh.drain_locked(&mut g);
            if !progressed && g.tail.0 == sh.buf.reserved() {
                break; // stable: nothing unpublished remains
            }
            ariesim_common::yield_point!();
        }
        match frame::read_frame(&g.image, lsn)? {
            FrameRead::Ok { body, .. } => LogRecord::decode(lsn, body),
            FrameRead::End { .. } => Err(Error::CorruptLog {
                lsn,
                reason: "no valid frame at lsn".into(),
            }),
        }
    }

    /// Iterate records in LSN order starting at `from` (or the log start if
    /// `from` is NULL). Each `next()` re-acquires the internal lock, so the
    /// iterator may observe records appended after it was created.
    pub fn scan(&self, from: Lsn) -> LogIter<'_> {
        LogIter {
            mgr: self,
            at: if from.is_null() { FIRST_LSN } else { from },
        }
    }

    /// First LSN ever (the log start).
    pub fn first_lsn(&self) -> Lsn {
        FIRST_LSN
    }

    // --- master record ---------------------------------------------------

    /// Durably record the LSN of the latest complete checkpoint's begin
    /// record. Written atomically via rename.
    pub fn write_master(&self, ckpt_lsn: Lsn) -> Result<()> {
        crash_point!("wal.master.before");
        let tmp = self.sh.master_path.with_extension("master.tmp");
        let mut body = ckpt_lsn.0.to_le_bytes().to_vec();
        let crc = ariesim_common::codec::crc32c(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        std::fs::write(&tmp, &body)?;
        crash_point!("wal.master.tmp_written");
        std::fs::rename(&tmp, &self.sh.master_path)?;
        crash_point!("wal.master.after");
        Ok(())
    }

    // --- replication streaming -------------------------------------------

    /// Read a chunk of the durable log image for shipping to a standby:
    /// whole frames starting at `from` (log start if NULL), totalling at
    /// most `max_bytes` — except that the first frame always ships whole,
    /// so one oversized record cannot wedge the stream. Returns the raw
    /// bytes and the LSN one past the chunk (the `from` of the next call).
    /// An empty chunk means `from` is the durable end. Buffered-tail
    /// frames never ship: only log the primary cannot lose may reach a
    /// standby.
    pub fn read_durable_chunk(&self, from: Lsn, max_bytes: usize) -> Result<(Vec<u8>, Lsn)> {
        let g = self.sh.inner.lock();
        let from = if from.is_null() { FIRST_LSN } else { from };
        if from < FIRST_LSN || from > g.durable_end {
            return Err(Error::CorruptLog {
                lsn: from,
                reason: format!("chunk start outside durable log (ends at {})", g.durable_end),
            });
        }
        let durable = &g.image[..g.durable_end.0 as usize];
        let mut at = from;
        while let FrameRead::Ok { next, .. } = frame::read_frame(durable, at)? {
            if at > from && (next.0 - from.0) as usize > max_bytes {
                break;
            }
            at = next;
            if (at.0 - from.0) as usize >= max_bytes {
                break;
            }
        }
        Ok((g.image[from.0 as usize..at.0 as usize].to_vec(), at))
    }

    /// Splice a shipped chunk (whole frames, as produced by
    /// [`LogManager::read_durable_chunk`] on a primary) onto this log at
    /// exactly the current tail. The standby's log stays a byte-identical
    /// prefix of the primary's, so primary LSNs are valid here verbatim;
    /// `at` guards against gaps, duplicates, and reordering. The chunk is
    /// CRC-validated frame by frame before any state changes, then written
    /// through to the file immediately: shipped log was already durable on
    /// the primary, and the standby must not apply records it could lose.
    pub fn ingest_frames(&self, at: Lsn, chunk: &[u8]) -> Result<()> {
        let sh = &*self.sh;
        let mut g = sh.inner.lock();
        while sh.drain_locked(&mut g) {}
        if g.durable_end != g.tail {
            return Err(Error::Internal(
                "ingest_frames on a log with a buffered append tail".into(),
            ));
        }
        if at != g.tail {
            return Err(Error::CorruptLog {
                lsn: at,
                reason: format!("ingest chunk at {at}, but the log ends at {}", g.tail),
            });
        }
        if chunk.is_empty() {
            return Ok(());
        }
        let mut off = Lsn(0);
        let mut frames = 0u64;
        let mut last = Lsn::NULL;
        while (off.0 as usize) < chunk.len() {
            match frame::read_frame(chunk, off)? {
                FrameRead::Ok { next, .. } => {
                    last = Lsn(at.0 + off.0);
                    off = next;
                    frames += 1;
                }
                FrameRead::End { .. } => {
                    return Err(Error::CorruptLog {
                        lsn: Lsn(at.0 + off.0),
                        reason: "torn or corrupt frame in shipped chunk".into(),
                    });
                }
            }
        }
        // Claim the chunk's LSN range in the ring so append LSNs stay
        // consistent. A plain store would race a concurrent appender's
        // fetch-add; the CAS fails instead and preserves the old contract
        // ("no buffered append tail during ingest").
        if !sh.buf.try_reserve_at(at.0, chunk.len() as u64) {
            return Err(Error::Internal(
                "ingest_frames raced a concurrent append".into(),
            ));
        }
        // Write-through, with a crash point splitting the write so the
        // torture harness can leave a genuinely torn standby tail.
        g.file.seek(SeekFrom::Start(at.0))?;
        let half = chunk.len() / 2;
        g.file.write_all(&chunk[..half])?;
        crash_point!("wal.ingest.mid");
        g.file.write_all(&chunk[half..])?;
        if sh.opts.fsync {
            g.file.sync_data()?;
        }
        g.image.extend_from_slice(chunk);
        g.tail = Lsn(g.image.len() as u64);
        g.durable_end = g.tail;
        g.aligned = g.tail;
        // The bytes bypassed the ring's slab; account for them so later
        // ring appends still publish and drain cleanly.
        sh.buf.skip(at.0, chunk.len() as u64);
        sh.buf.mark_drained(g.tail.0);
        // ordering: Relaxed — monotone register (see `append`)
        sh.last_lsn.fetch_max(last.0, Ordering::Relaxed);
        // ordering: Release publishes the fsync'd prefix; Acquire readers of `flushed` may then skip the lock
        sh.flushed.store(g.durable_end.0, Ordering::Release);
        sh.stats.log_records.add(frames);
        sh.stats.log_bytes.add(chunk.len() as u64);
        Ok(())
    }

    /// Read the master record; NULL if none has ever been written.
    pub fn read_master(&self) -> Result<Lsn> {
        let raw = match std::fs::read(&self.sh.master_path) {
            Ok(r) => r,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Lsn::NULL),
            Err(e) => return Err(e.into()),
        };
        if raw.len() != 12 {
            return Err(Error::CorruptLog {
                lsn: Lsn::NULL,
                reason: "bad master record length".into(),
            });
        }
        let lsn = ariesim_common::codec::u64_at(&raw, 0);
        let crc = ariesim_common::codec::u32_at(&raw, 8);
        if ariesim_common::codec::crc32c(&raw[0..8]) != crc {
            return Err(Error::CorruptLog {
                lsn: Lsn::NULL,
                reason: "master record checksum mismatch".into(),
            });
        }
        Ok(Lsn(lsn))
    }
}

impl Drop for LogManager {
    fn drop(&mut self) {
        if let Some(h) = self.flusher.take() {
            // ordering: Release so the flusher's Acquire load sees the flag;
            // the unpark below also fences, but be explicit.
            self.sh.shutdown.store(true, Ordering::Release);
            self.sh.barrier.flusher.unpark();
            // Deliberately no final flush: dropping the manager simulates a
            // crash, and a crash loses exactly the unflushed tail.
            let _ = h.join();
        }
    }
}

impl Shared {
    /// Copy the ring's published prefix into the image and advance the
    /// drain + frame-aligned watermarks. Returns whether bytes moved.
    /// Caller holds the inner lock (there is exactly one drainer at a time).
    fn drain_locked(&self, g: &mut Inner) -> bool {
        let from = g.tail.0;
        let to = self.buf.published_to(from);
        if to == from {
            return false;
        }
        self.buf.copy_out(from, to, &mut g.image);
        g.tail = Lsn(to);
        self.buf.mark_drained(to);
        // Advance the frame-boundary watermark with a cheap length-header
        // walk (no CRC — these bytes were published by a successful append).
        // Flushing past a frame boundary would write a torn frame, and a
        // crash right after would falsely ack durability for it.
        let mut at = g.aligned.0 as usize;
        loop {
            if at + frame::FRAME_HEADER_LEN > g.image.len() {
                break;
            }
            let len = ariesim_common::codec::u32_at(&g.image, at) as usize;
            debug_assert!(len > 0, "zero-length frame in drained log at {at}");
            let next = at + frame::FRAME_HEADER_LEN + len;
            if next > g.image.len() {
                break;
            }
            at = next;
        }
        g.aligned = Lsn(at as u64);
        true
    }

    /// Drain until the frame containing `lsn` is wholly in the image
    /// (`aligned > lsn`, which alignment makes equivalent to "the frame at
    /// `lsn` is complete"), or the ring is stable with nothing unpublished.
    /// Spin-to-stable: a reservation below `lsn` may still be mid-copy, and
    /// its publisher needs no lock to finish, so spinning here is live.
    fn drain_until(&self, g: &mut Inner, lsn: Lsn) {
        loop {
            self.drain_locked(g);
            if g.aligned > lsn || g.tail.0 == self.buf.reserved() {
                return;
            }
            ariesim_common::yield_point!();
        }
    }

    /// One group flush: drain up to `target`, then write + (optionally)
    /// fsync the whole unflushed aligned prefix.
    fn group_flush(&self, g: &mut Inner, target: Lsn) -> Result<()> {
        self.drain_until(g, target);
        // Window: reservation published and drained, but nothing durable.
        crash_point!("wal.group.flush_mid");
        self.flush_locked(g)?;
        crash_point!("wal.group.flush_done");
        Ok(())
    }

    fn flush_locked(&self, g: &mut Inner) -> Result<()> {
        let from = g.durable_end.0 as usize;
        let to = g.aligned.0 as usize;
        if from == to {
            return Ok(());
        }
        let force = self.obs.timer();
        let _span = self.obs.span(SpanKind::WalFsync, 0, 0);
        crash_point!("wal.flush.begin");
        g.file.seek(SeekFrom::Start(from as u64))?;
        let slice: Vec<u8> = g.image[from..to].to_vec();
        // Two writes with a crash point between them: crashing at
        // "wal.flush.mid" leaves a genuinely torn tail (first half of the
        // slice on disk, durable_end not advanced) for the torn-tail scan.
        let half = slice.len() / 2;
        g.file.write_all(&slice[..half])?;
        crash_point!("wal.flush.mid");
        g.file.write_all(&slice[half..])?;
        if self.opts.fsync {
            g.file.sync_data()?;
        }
        crash_point!("wal.flush.end");
        g.durable_end = g.aligned;
        // ordering: Release publishes the fsync'd prefix; Acquire readers of `flushed` may then skip the lock
        self.flushed.store(g.durable_end.0, Ordering::Release);
        self.stats.log_forces.bump();
        self.obs.hist.log_force.record_since(force);
        self.obs.event(
            EventKind::LogForce,
            ModeTag::None,
            0,
            0,
            (to - from) as u64,
        );
        Ok(())
    }

    /// Largest LSN currently enqueued on the barrier, if any.
    fn barrier_max(&self) -> Option<u64> {
        self.barrier.q.lock().iter().map(|(l, _)| *l).max()
    }

    /// Wake every waiter whose LSN is durable now; returns how many.
    fn wake_satisfied(&self) -> u64 {
        // ordering: Acquire pairs with the Release store after fsync
        let durable = self.flushed.load(Ordering::Acquire);
        let mut woken = 0;
        self.barrier.q.lock().retain(|(l, p)| {
            if *l < durable {
                p.unpark();
                woken += 1;
                false
            } else {
                true
            }
        });
        woken
    }

    /// Record one flush batch that satisfied `satisfied` committers.
    fn note_batch(&self, satisfied: u64) {
        let n = satisfied.max(1);
        // ordering: Relaxed — plain telemetry counter, no protocol role
        self.obs.wal.group_batches.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — plain telemetry counter, no protocol role
        self.obs.wal.group_riders.fetch_add(n - 1, Ordering::Relaxed);
        if self.obs.on() {
            // Batch *size* (a count, not nanoseconds) through the log2
            // histogram machinery; see `Histograms::wal_group_batch`.
            self.obs.hist.wal_group_batch.record_ns(n);
        }
    }

    fn check_failed(&self) -> Result<()> {
        // ordering: Acquire pairs with the Release in `fail`, so the error
        // message write is visible once the flag is seen.
        if self.failed.load(Ordering::Acquire) {
            let msg = self
                .flusher_err
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone()
                .unwrap_or_else(|| "wal flusher failed".into());
            return Err(Error::Internal(msg));
        }
        Ok(())
    }

    /// Latch a flusher-thread error and wake everyone so it propagates.
    fn fail(&self, e: &Error) {
        *self.flusher_err.lock().unwrap_or_else(|p| p.into_inner()) = Some(e.to_string());
        // ordering: Release pairs with the Acquire in `check_failed`
        self.failed.store(true, Ordering::Release);
        for (_, p) in self.barrier.q.lock().drain(..) {
            p.unpark();
        }
    }

    /// Slow path of [`LogManager::flush_to`] in leader mode (no dedicated
    /// flusher thread): group commit by leader election. Whoever finds the
    /// inner lock free flushes the barrier maximum for everyone queued;
    /// everyone else polls the durable mirror for about one batch's
    /// duration, then parks and re-elects on timeout so a vanished leader
    /// can never strand a rider.
    fn group_wait(&self, lsn: Lsn) -> Result<()> {
        let polls = spin_polls();
        let mut registered = false;
        loop {
            // ordering: Acquire pairs with the Release store after fsync
            if lsn.0 < self.flushed.load(Ordering::Acquire) {
                // A satisfied entry left on the barrier is dropped (and
                // this thread's parker token set) by a later wake pass;
                // park loops re-check their predicate, so that's harmless.
                return Ok(());
            }
            self.check_failed()?;
            if let Some(mut g) = self.inner.try_lock() {
                let target = Lsn(self.barrier_max().map_or(lsn.0, |m| m.max(lsn.0)));
                self.group_flush(&mut g, target)?;
                drop(g);
                let woken = self.wake_satisfied();
                // A leader that had already enqueued as a rider was counted
                // (and unparked) by its own wake pass.
                self.note_batch(if registered { woken.max(1) } else { woken + 1 });
                // ordering: Acquire pairs with the Release store after fsync
                let durable = self.flushed.load(Ordering::Acquire);
                if lsn.0 >= durable && durable == self.buf.reserved() {
                    // `lsn` lies beyond everything ever appended; the whole
                    // log is durable, which is all a flush can promise.
                    return Ok(());
                }
            } else {
                if !registered {
                    PARKER.with(|p| self.barrier.q.lock().push((lsn.0, Arc::clone(p))));
                    registered = true;
                }
                // A flush is in flight and its batch may already cover this
                // LSN: poll the mirror for about its duration — cheaper
                // than a park/unpark round trip — before sleeping.
                let mut rode = false;
                for _ in 0..polls {
                    // ordering: Acquire pairs with the Release store after fsync
                    if lsn.0 < self.flushed.load(Ordering::Acquire) {
                        rode = true;
                        break;
                    }
                    std::hint::spin_loop();
                }
                if !rode {
                    PARKER.with(|p| p.park_timeout(RIDER_RETRY));
                }
            }
        }
    }

    /// Slow path of [`LogManager::flush_to`] in flusher mode: adaptive
    /// batch window. While commits arrive one at a time (`regime_busy`
    /// false — the queue was empty) there is no batch to join, so the
    /// committer flushes inline immediately, exactly like a leader-mode
    /// leader. While commits overlap, it enqueues on the barrier, hands
    /// off to the dedicated flusher, and parks with no timeout — the
    /// flusher (or `fail`) is the guaranteed waker, and a timed retry
    /// would put this thread back on the run queue where it only delays
    /// the batch it is waiting for.
    fn flusher_wait(&self, lsn: Lsn) -> Result<()> {
        // Clamp an over-the-end LSN (e.g. `flush_to(Lsn::MAX)`) to the last
        // appended byte: waiting for the mirror to pass that is exactly the
        // "whole log durable" promise, and it keeps the rider wake rule
        // (`waiter < durable`) sufficient on its own.
        let lsn = Lsn(lsn.0.min(self.buf.reserved().saturating_sub(1)));
        // ordering: Relaxed — scheduling regime hint only; durability is
        // carried by `flushed` and the inner lock, never by this flag.
        if !self.regime_busy.load(Ordering::Relaxed) {
            // ordering: Relaxed — heuristic probe counter, no data guarded
            let probe = self.solo_flushes.fetch_add(1, Ordering::Relaxed) % SOLO_PROBE_PERIOD
                == SOLO_PROBE_PERIOD - 1;
            if !probe {
                if let Some(mut g) = self.inner.try_lock() {
                    let target = Lsn(self.barrier_max().map_or(lsn.0, |m| m.max(lsn.0)));
                    self.group_flush(&mut g, target)?;
                    drop(g);
                    let woken = self.wake_satisfied();
                    self.note_batch(woken + 1);
                    if woken > 0 {
                        // Someone was parked on the barrier while we flushed
                        // inline — a probe, or a leftover rider: commits
                        // overlap, batch from here on.
                        // ordering: Relaxed — scheduling regime hint only
                        self.regime_busy.store(true, Ordering::Relaxed);
                    }
                    return Ok(());
                }
                // The lock being held means another commit's flush is in
                // flight right now: commits overlap, so start batching.
                // ordering: Relaxed — scheduling regime hint only
                self.regime_busy.store(true, Ordering::Relaxed);
            }
            // A probe falls through to the rider path: if any other
            // committer exists it will flush inline during our nap-bounded
            // park, find us on the barrier, and promote the regime.
        }
        let polls = spin_polls();
        let mut registered = false;
        loop {
            // ordering: Acquire pairs with the Release store after fsync
            if lsn.0 < self.flushed.load(Ordering::Acquire) {
                // A satisfied entry left on the barrier is dropped (and
                // this thread's parker token set) by a later wake pass;
                // park loops re-check their predicate, so that's harmless.
                return Ok(());
            }
            self.check_failed()?;
            if !registered {
                PARKER.with(|p| {
                    let mut q = self.barrier.q.lock();
                    q.push((lsn.0, Arc::clone(p)));
                    let n = q.len();
                    drop(q);
                    // First committer arms the flusher; a filled batch ends
                    // its coalescing nap early. Intermediate arrivals stay
                    // quiet so they don't cut the batch window short.
                    if n == 1 || n >= GROUP_FILL {
                        self.barrier.flusher.unpark();
                    }
                });
                registered = true;
                // Re-check the mirror and the failure latch before parking:
                // if `fail` drained the queue between our push and here, it
                // also set our token, so the next park cannot hang.
                continue;
            }
            let mut rode = false;
            for _ in 0..polls {
                // ordering: Acquire pairs with the Release store after fsync
                if lsn.0 < self.flushed.load(Ordering::Acquire) {
                    rode = true;
                    break;
                }
                std::hint::spin_loop();
            }
            if rode {
                return Ok(());
            }
            PARKER.with(|p| p.park());
        }
    }

    /// Body of the dedicated `wal-flusher` thread. Adaptive batch window:
    /// an empty queue parks until a committer arrives. On a single-core
    /// machine a non-filled batch first gets one yield-until-stable window
    /// (bounded by [`COALESCE_NAP`]) so serialized committers can run up
    /// to their commit points and ride along; multicore machines skip the
    /// window — committers that enqueue while a flush is in flight batch
    /// naturally. The window doubles as the regime read-out: a streak of
    /// windows that still collected only one committer proves commits are
    /// not overlapping, and the system drops back to inline solo flushing
    /// until commits collide again.
    fn flusher_main(sh: &Arc<Shared>) {
        // Whether the current batch already had its coalescing nap.
        let mut napped = false;
        // Consecutive napped batches that collected only one committer.
        // Demotion to the solo regime needs several in a row: on one CPU
        // the scheduler hands each thread a multi-millisecond slice, so
        // even a busy system produces the occasional single-rider batch,
        // and a premature demotion sticks (the solo regime's inline
        // `try_lock` almost never collides on one CPU — re-promotion waits
        // on the periodic probe).
        let mut solo_streak = 0u32;
        loop {
            // ordering: Acquire pairs with the Release in `Drop`
            if sh.shutdown.load(Ordering::Acquire) {
                return;
            }
            let (n, target) = {
                let q = sh.barrier.q.lock();
                (q.len(), q.iter().map(|(l, _)| *l).max())
            };
            let Some(target) = target else {
                napped = false;
                // Brief poll before parking: at commit rates worth a
                // dedicated flusher, the next committer arrives within the
                // cost of a park/unpark pair.
                let mut armed = false;
                for _ in 0..spin_polls() {
                    // ordering: Acquire pairs with the Release in `Drop`
                    if sh.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if sh.barrier.q.lock().is_empty() {
                        std::hint::spin_loop();
                    } else {
                        armed = true;
                        break;
                    }
                }
                if !armed {
                    sh.barrier.flusher.park();
                }
                continue;
            };
            if single_core() && !sched::thread_armed() && !napped && n < GROUP_FILL {
                // Single-core batch window, timer-free: hand the CPU to the
                // runnable committers (`yield_now`) and re-read the queue.
                // On one CPU a yield lets every runnable thread advance to
                // its commit point, so "no growth across a yield" means
                // every in-flight committer is already on the barrier (the
                // rest are parked, or lock-blocked behind a rider and
                // unable to commit until this batch flushes) and waiting
                // longer cannot grow the batch — it can only idle the CPU.
                // A clock bound caps the window in case a yield keeps
                // getting the CPU back immediately.
                napped = true;
                let window = std::time::Instant::now();
                let mut prev_n = n;
                loop {
                    std::thread::yield_now();
                    // ordering: Acquire pairs with the Release in `Drop`
                    if sh.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    let n = sh.barrier.q.lock().len();
                    if n >= GROUP_FILL || n == prev_n || window.elapsed() >= COALESCE_NAP {
                        break;
                    }
                    prev_n = n;
                }
                continue;
            }
            // ordering: Acquire pairs with the Release store after fsync
            if target < sh.flushed.load(Ordering::Acquire) {
                napped = false;
                sh.wake_satisfied();
                continue;
            }
            let res = {
                let mut g = sh.inner.lock();
                sh.group_flush(&mut g, Lsn(target))
            };
            match res {
                Ok(()) => {
                    let woken = sh.wake_satisfied();
                    sh.note_batch(woken.max(1));
                    if napped {
                        // The nap doubles as the regime read-out: a batch
                        // that collected ≥ 2 proves commits overlap; only a
                        // streak of single-rider naps demotes to inline
                        // solo flushing (see `solo_streak` above).
                        if woken >= 2 {
                            solo_streak = 0;
                        } else {
                            solo_streak += 1;
                            if solo_streak >= 3 {
                                // ordering: Relaxed — scheduling regime hint
                                sh.regime_busy.store(false, Ordering::Relaxed);
                                solo_streak = 0;
                            }
                        }
                    }
                    napped = false;
                }
                Err(e) => {
                    sh.fail(&e);
                    return;
                }
            }
        }
    }
}

/// Iterator over log records; see [`LogManager::scan`].
pub struct LogIter<'a> {
    mgr: &'a LogManager,
    at: Lsn,
}

impl LogIter<'_> {
    /// LSN the next `next()` call will read.
    pub fn position(&self) -> Lsn {
        self.at
    }
}

impl Iterator for LogIter<'_> {
    type Item = Result<LogRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        let sh = &*self.mgr.sh;
        let mut g = sh.inner.lock();
        if self.at >= g.aligned {
            sh.drain_locked(&mut g);
        }
        if self.at >= g.tail {
            return None;
        }
        match frame::read_frame(&g.image, self.at) {
            Ok(FrameRead::Ok { body, .. }) => {
                let rec = LogRecord::decode(self.at, body);
                self.at = Lsn(self.at.0 + frame::frame_len(body.len()));
                Some(rec)
            }
            Ok(FrameRead::End { .. }) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordKind, RmId};
    use ariesim_common::stats::new_stats;
    use ariesim_common::tmp::TempDir;
    use ariesim_common::{PageId, TxnId};

    fn mgr(dir: &TempDir) -> LogManager {
        LogManager::open(&dir.file("wal"), LogOptions::default(), new_stats()).unwrap()
    }

    fn upd(txn: u64, prev: Lsn, body: &[u8]) -> LogRecord {
        LogRecord::update(TxnId(txn), prev, RmId::Heap, PageId(1), body.to_vec())
    }

    #[test]
    fn append_read_roundtrip() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let l1 = m.append(&upd(1, Lsn::NULL, b"one"));
        let l2 = m.append(&upd(1, l1, b"two"));
        assert!(l1 < l2);
        let r = m.read(l2).unwrap();
        assert_eq!(r.prev_lsn, l1);
        assert_eq!(r.body, b"two");
        assert_eq!(m.last_lsn(), l2);
    }

    #[test]
    fn scan_returns_all_in_order() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let mut lsns = Vec::new();
        let mut prev = Lsn::NULL;
        for i in 0..10u8 {
            prev = m.append(&upd(1, prev, &[i]));
            lsns.push(prev);
        }
        let seen: Vec<Lsn> = m.scan(Lsn::NULL).map(|r| r.unwrap().lsn).collect();
        assert_eq!(seen, lsns);
        // Scan from the middle.
        let seen: Vec<Lsn> = m.scan(lsns[4]).map(|r| r.unwrap().lsn).collect();
        assert_eq!(seen, &lsns[4..]);
    }

    #[test]
    fn unflushed_tail_lost_on_reopen() {
        let dir = TempDir::new("wal");
        let path = dir.file("wal");
        let stats = new_stats();
        let m = LogManager::open(&path, LogOptions::default(), stats.clone()).unwrap();
        let l1 = m.append(&upd(1, Lsn::NULL, b"durable"));
        m.flush_to(l1).unwrap();
        let l2 = m.append(&upd(1, l1, b"lost"));
        assert!(m.read(l2).is_ok()); // readable while buffered
        drop(m); // crash: no flush
        let m2 = LogManager::open(&path, LogOptions::default(), new_stats()).unwrap();
        assert_eq!(m2.last_lsn(), l1);
        assert!(m2.read(l2).is_err());
        let survived: Vec<_> = m2.scan(Lsn::NULL).map(|r| r.unwrap()).collect();
        assert_eq!(survived.len(), 1);
        assert_eq!(survived[0].body, b"durable");
    }

    #[test]
    fn flush_is_group_flush() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let l1 = m.append(&upd(1, Lsn::NULL, b"a"));
        let l2 = m.append(&upd(1, l1, b"b"));
        m.flush_to(l1).unwrap();
        // l2 rode along.
        assert!(m.flushed_lsn() > l2);
    }

    #[test]
    fn flush_to_already_durable_is_noop() {
        let dir = TempDir::new("wal");
        let stats = new_stats();
        let m = LogManager::open(&dir.file("wal"), LogOptions::default(), stats.clone()).unwrap();
        let l1 = m.append(&upd(1, Lsn::NULL, b"a"));
        m.flush_to(l1).unwrap();
        let forces = stats.snapshot().log_forces;
        m.flush_to(l1).unwrap();
        assert_eq!(stats.snapshot().log_forces, forces);
    }

    #[test]
    fn noop_flush_does_not_serialize_behind_inflight_flush() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let l1 = m.append(&upd(1, Lsn::NULL, b"a"));
        m.flush_to(l1).unwrap();
        // Simulate an in-flight flush by holding the inner lock; a flush_to
        // for an already-durable LSN must return without acquiring it.
        let _held = m.sh.inner.lock();
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|s| {
            s.spawn(|| {
                m.flush_to(l1).unwrap();
                tx.send(()).unwrap();
            });
            rx.recv_timeout(std::time::Duration::from_secs(2))
                .expect("no-op flush blocked behind held inner lock");
        });
    }

    #[test]
    fn reopen_resumes_lsn_sequence() {
        let dir = TempDir::new("wal");
        let path = dir.file("wal");
        let m = LogManager::open(&path, LogOptions::default(), new_stats()).unwrap();
        let l1 = m.append(&upd(1, Lsn::NULL, b"a"));
        m.flush_all().unwrap();
        drop(m);
        let m2 = LogManager::open(&path, LogOptions::default(), new_stats()).unwrap();
        let l2 = m2.append(&upd(2, Lsn::NULL, b"b"));
        assert!(l2 > l1);
        assert_eq!(m2.read(l1).unwrap().body, b"a");
        assert_eq!(m2.read(l2).unwrap().body, b"b");
    }

    #[test]
    fn torn_tail_truncated_on_open() {
        let dir = TempDir::new("wal");
        let path = dir.file("wal");
        let m = LogManager::open(&path, LogOptions::default(), new_stats()).unwrap();
        let l1 = m.append(&upd(1, Lsn::NULL, b"keep"));
        m.append(&upd(1, l1, b"torn-away"));
        m.flush_all().unwrap();
        drop(m);
        // Tear the last record's final byte off.
        let mut raw = std::fs::read(&path).unwrap();
        raw.truncate(raw.len() - 1);
        std::fs::write(&path, &raw).unwrap();
        let m2 = LogManager::open(&path, LogOptions::default(), new_stats()).unwrap();
        let recs: Vec<_> = m2.scan(Lsn::NULL).map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].body, b"keep");
        // New appends land after the truncation point.
        let l3 = m2.append(&upd(2, Lsn::NULL, b"new"));
        assert_eq!(m2.read(l3).unwrap().body, b"new");
    }

    #[test]
    fn master_record_roundtrip() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        assert_eq!(m.read_master().unwrap(), Lsn::NULL);
        m.write_master(Lsn(777)).unwrap();
        assert_eq!(m.read_master().unwrap(), Lsn(777));
        m.write_master(Lsn(888)).unwrap();
        assert_eq!(m.read_master().unwrap(), Lsn(888));
    }

    #[test]
    fn read_null_or_out_of_range_fails() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        assert!(m.read(Lsn::NULL).is_err());
        assert!(m.read(Lsn(1 << 40)).is_err());
    }

    #[test]
    fn control_records_roundtrip_all_kinds() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        for kind in [
            RecordKind::Begin,
            RecordKind::Commit,
            RecordKind::Abort,
            RecordKind::End,
        ] {
            let lsn = m.append(&LogRecord::control(TxnId(3), Lsn::NULL, kind));
            assert_eq!(m.read(lsn).unwrap().kind, kind);
        }
    }

    #[test]
    fn durable_chunk_ships_only_flushed_frames() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let l1 = m.append(&upd(1, Lsn::NULL, b"durable"));
        m.flush_all().unwrap();
        m.append(&upd(1, l1, b"still buffered"));
        let (chunk, next) = m.read_durable_chunk(Lsn::NULL, 1 << 20).unwrap();
        assert_eq!(next, m.flushed_lsn());
        assert!(!chunk.is_empty());
        // The buffered record is not in the chunk.
        let (rest, end) = m.read_durable_chunk(next, 1 << 20).unwrap();
        assert!(rest.is_empty());
        assert_eq!(end, next);
    }

    #[test]
    fn durable_chunk_respects_max_bytes_on_frame_boundaries() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let mut prev = Lsn::NULL;
        for i in 0..8u8 {
            prev = m.append(&upd(1, prev, &[i; 32]));
        }
        m.flush_all().unwrap();
        // Walk the log in tiny chunks; every chunk must parse as whole
        // frames, and concatenated they must equal one big chunk.
        let (all, end) = m.read_durable_chunk(Lsn::NULL, 1 << 20).unwrap();
        let mut walked = Vec::new();
        let mut at = m.first_lsn();
        while at < end {
            let (chunk, next) = m.read_durable_chunk(at, 40).unwrap();
            assert!(next > at, "no progress at {at}");
            walked.extend_from_slice(&chunk);
            at = next;
        }
        assert_eq!(walked, all);
    }

    #[test]
    fn ingest_extends_log_and_survives_reopen() {
        let dir = TempDir::new("wal");
        let primary = LogManager::open(&dir.file("p"), LogOptions::default(), new_stats()).unwrap();
        let standby_path = dir.file("s");
        let standby =
            LogManager::open(&standby_path, LogOptions::default(), new_stats()).unwrap();
        let mut prev = Lsn::NULL;
        for i in 0..5u8 {
            prev = m_append(&primary, i, prev);
        }
        primary.flush_all().unwrap();
        let mut at = standby.next_lsn();
        loop {
            let (chunk, next) = primary.read_durable_chunk(at, 64).unwrap();
            if chunk.is_empty() {
                break;
            }
            standby.ingest_frames(at, &chunk).unwrap();
            at = next;
        }
        assert_eq!(standby.next_lsn(), primary.flushed_lsn());
        assert_eq!(standby.last_lsn(), primary.last_lsn());
        // Ingested log is durable without any flush call.
        drop(standby);
        let re = LogManager::open(&standby_path, LogOptions::default(), new_stats()).unwrap();
        assert_eq!(re.next_lsn(), primary.flushed_lsn());
        let bodies: Vec<_> = re.scan(Lsn::NULL).map(|r| r.unwrap().body).collect();
        let expect: Vec<_> = primary.scan(Lsn::NULL).map(|r| r.unwrap().body).collect();
        assert_eq!(bodies, expect);
    }

    fn m_append(m: &LogManager, i: u8, prev: Lsn) -> Lsn {
        m.append(&upd(1, prev, &[i; 16]))
    }

    #[test]
    fn ingest_rejects_gap_and_garbage() {
        let dir = TempDir::new("wal");
        let primary = mgr(&dir);
        let standby =
            LogManager::open(&dir.file("s2"), LogOptions::default(), new_stats()).unwrap();
        primary.append(&upd(1, Lsn::NULL, b"x"));
        primary.flush_all().unwrap();
        let (chunk, next) = primary.read_durable_chunk(Lsn::NULL, 1 << 20).unwrap();
        // Wrong position: chunk claims to start past the standby's tail.
        assert!(standby.ingest_frames(next, &chunk).is_err());
        // Corrupt payload: flip a byte.
        let mut bad = chunk.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(standby
            .ingest_frames(standby.next_lsn(), &bad)
            .is_err());
        // Clean chunk at the right position still works afterwards.
        standby.ingest_frames(standby.next_lsn(), &chunk).unwrap();
        assert_eq!(standby.next_lsn(), next);
    }

    #[test]
    fn concurrent_appends_get_distinct_lsns() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let lsns: Vec<Lsn> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let m = &m;
                    s.spawn(move || {
                        (0..100)
                            .map(|i| m.append(&upd(t, Lsn::NULL, &[t as u8, i as u8])))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let mut sorted = lsns.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 400);
        assert_eq!(m.scan(Lsn::NULL).count(), 400);
    }

    #[test]
    fn tiny_ring_wraps_and_backpressures() {
        let dir = TempDir::new("wal");
        // 2 segments × 64 bytes (62-byte frames, just under the one-segment
        // reservation cap): every frame wraps, and sustained appends
        // exercise the has_space help-drain path.
        let opts = LogOptions {
            ring_segments: 2,
            ring_segment_bytes: 64,
            ..LogOptions::default()
        };
        let m = LogManager::open(&dir.file("wal"), opts, new_stats()).unwrap();
        let mut prev = Lsn::NULL;
        for i in 0..50u8 {
            prev = m.append(&upd(1, prev, &[i; 24]));
        }
        m.flush_to(prev).unwrap();
        assert!(m.flushed_lsn() > prev);
        let bodies: Vec<_> = m.scan(Lsn::NULL).map(|r| r.unwrap().body).collect();
        assert_eq!(bodies.len(), 50);
        for (i, b) in bodies.iter().enumerate() {
            assert_eq!(b, &vec![i as u8; 24]);
        }
    }

    #[test]
    fn mirror_never_leads_published_watermark() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let mut prev = Lsn::NULL;
        for i in 0..20u8 {
            prev = m.append(&upd(1, prev, &[i; 8]));
            // Read order matters: mirror first, then published.
            let mirror = m.flushed_lsn();
            let published = m.published_lsn();
            assert!(mirror <= published, "durable mirror leads publication");
            if i % 5 == 0 {
                m.flush_to(prev).unwrap();
            }
        }
    }
}
