//! The log manager.
//!
//! Owns the log's durability boundary. Appends go into an in-memory tail
//! buffer; [`LogManager::flush_to`] makes everything up to (at least) a given
//! LSN durable — the operation the WAL protocol and commit processing force.
//! A crash loses exactly the unflushed tail, which is what the crash tests
//! rely on: dropping the manager without flushing and reopening the file
//! reproduces the post-crash stable state.
//!
//! The manager also keeps the whole durable log memory-resident. At the
//! scale of this reproduction (logs of at most a few hundred MB) this is a
//! deliberate simplification that changes no protocol behaviour: reads
//! during rollback and restart hit the same byte image they would read from
//! disk.

use crate::frame::{self, FrameRead, FIRST_LSN, LOG_MAGIC};
use crate::record::{LogRecord, RecordKind};
use ariesim_common::stats::{Bump, StatsHandle};
use ariesim_fault::crash_point;
use ariesim_obs::{EventKind, ModeTag, Obs, ObsHandle, SpanKind};
use ariesim_common::{Error, Lsn, Result};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
// The durable-LSN mirror is a model-checkable facade atomic: its protocol
// against concurrent appenders/flushers is covered by `crates/model`'s WAL
// harness.
use ariesim_common::msync::AtomicU64;
use std::sync::atomic::Ordering;

/// Tuning and durability options.
#[derive(Clone, Debug, Default)]
pub struct LogOptions {
    /// Call `sync_data` after each flush. Off by default: the tests simulate
    /// crashes at the process level, where "written to the file" is durable.
    pub fsync: bool,
}

struct Inner {
    file: File,
    /// Complete log image, magic included: `image[0..durable_end]` mirrors
    /// the file; `image[durable_end..]` is the unflushed tail.
    image: Vec<u8>,
    /// Everything below this offset is stable.
    durable_end: Lsn,
    /// LSN the next appended record will get (= image.len()).
    tail: Lsn,
    /// LSN of the most recently appended record.
    last_lsn: Lsn,
}

/// The write-ahead log manager. Thread-safe; all methods take `&self`.
pub struct LogManager {
    inner: Mutex<Inner>,
    /// Mirror of `Inner::durable_end`, updated under the inner lock but
    /// readable without it: the fast path of [`LogManager::flush_to`] (and
    /// [`LogManager::flushed_lsn`]) must not serialize behind an in-flight
    /// flush when the requested LSN is already durable — the WAL-rule check
    /// on every page write-back hits this path constantly.
    flushed: AtomicU64,
    master_path: PathBuf,
    opts: LogOptions,
    stats: StatsHandle,
    obs: ObsHandle,
}

impl LogManager {
    /// Open (or create) the log at `path`. On open, scans for a torn tail and
    /// truncates the trustworthy image there, exactly as restart would.
    pub fn open(path: &Path, opts: LogOptions, stats: StatsHandle) -> Result<LogManager> {
        LogManager::open_with_obs(path, opts, stats, Obs::disabled())
    }

    /// [`LogManager::open`] with an explicit observability handle.
    pub fn open_with_obs(
        path: &Path,
        opts: LogOptions,
        stats: StatsHandle,
        obs: ObsHandle,
    ) -> Result<LogManager> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        if raw.is_empty() {
            file.write_all(LOG_MAGIC)?;
            raw = LOG_MAGIC.to_vec();
        } else if raw.len() < LOG_MAGIC.len() || &raw[..LOG_MAGIC.len()] != LOG_MAGIC {
            return Err(Error::CorruptLog {
                lsn: Lsn::NULL,
                reason: "bad log file magic".into(),
            });
        }
        // Find the end of the valid log (torn-tail scan) and discard beyond.
        let mut at = FIRST_LSN;
        let mut last_lsn = Lsn::NULL;
        loop {
            match frame::read_frame(&raw, at)? {
                FrameRead::Ok { next, .. } => {
                    last_lsn = at;
                    at = next;
                }
                FrameRead::End { at: end } => {
                    raw.truncate(end.0 as usize);
                    break;
                }
            }
        }
        file.set_len(raw.len() as u64)?;
        let end = Lsn(raw.len() as u64);
        Ok(LogManager {
            inner: Mutex::new(Inner {
                file,
                image: raw,
                durable_end: end,
                tail: end,
                last_lsn,
            }),
            flushed: AtomicU64::new(end.0),
            master_path: path.with_extension("master"),
            opts,
            stats,
            obs,
        })
    }

    /// Append a record (buffered, not yet durable). Returns its LSN.
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        let _span = self.obs.span(SpanKind::WalAppend, rec.txn.0, 0);
        let body = rec.encode();
        let framed = frame::encode_frame(&body);
        let mut g = self.inner.lock();
        let lsn = g.tail;
        g.image.extend_from_slice(&framed);
        g.tail = Lsn(g.image.len() as u64);
        g.last_lsn = lsn;
        crash_point!("wal.append.tail");
        self.stats.log_records.bump();
        self.stats.log_bytes.add(framed.len() as u64);
        // CLRs (including the dummy CLRs ending nested top actions) are the
        // trace hooks for rollback progress; every write site funnels here.
        if matches!(rec.kind, RecordKind::Clr | RecordKind::DummyClr) {
            self.obs
                .event(EventKind::ClrWrite, ModeTag::None, rec.txn.0, 0, lsn.0);
        }
        lsn
    }

    /// Make every record with LSN ≤ `lsn` durable. Group-flushes the whole
    /// tail (later records ride along, as in real group commit).
    pub fn flush_to(&self, lsn: Lsn) -> Result<()> {
        // Fast path: already durable. Must not take the inner lock, or every
        // WAL-rule check during page write-back would serialize behind an
        // in-flight group flush. `flushed` only ever grows, so a stale read
        // is safe — we just fall through to the locked path.
        if lsn.0 < self.flushed.load(Ordering::Acquire) { // ordering: pairs with the Release store after fsync
            return Ok(());
        }
        let mut g = self.inner.lock();
        if lsn < g.durable_end {
            return Ok(());
        }
        self.flush_locked(&mut g)
    }

    /// Make the entire log durable.
    pub fn flush_all(&self) -> Result<()> {
        let mut g = self.inner.lock();
        if g.durable_end == g.tail {
            return Ok(());
        }
        self.flush_locked(&mut g)
    }

    fn flush_locked(&self, g: &mut Inner) -> Result<()> {
        let from = g.durable_end.0 as usize;
        let to = g.tail.0 as usize;
        if from == to {
            return Ok(());
        }
        let force = self.obs.timer();
        let _span = self.obs.span(SpanKind::WalFsync, 0, 0);
        crash_point!("wal.flush.begin");
        g.file.seek(SeekFrom::Start(from as u64))?;
        let slice: Vec<u8> = g.image[from..to].to_vec();
        // Two writes with a crash point between them: crashing at
        // "wal.flush.mid" leaves a genuinely torn tail (first half of the
        // slice on disk, durable_end not advanced) for the torn-tail scan.
        let half = slice.len() / 2;
        g.file.write_all(&slice[..half])?;
        crash_point!("wal.flush.mid");
        g.file.write_all(&slice[half..])?;
        if self.opts.fsync {
            g.file.sync_data()?;
        }
        crash_point!("wal.flush.end");
        g.durable_end = g.tail;
        // ordering: Release publishes the fsync'd prefix; Acquire readers of `flushed` may then skip the lock
        self.flushed.store(g.durable_end.0, Ordering::Release);
        self.stats.log_forces.bump();
        self.obs.hist.log_force.record_since(force);
        self.obs.event(
            EventKind::LogForce,
            ModeTag::None,
            0,
            0,
            (to - from) as u64,
        );
        Ok(())
    }

    /// LSN below which everything is stable.
    pub fn flushed_lsn(&self) -> Lsn {
        Lsn(self.flushed.load(Ordering::Acquire)) // ordering: pairs with the Release store after fsync
    }

    /// LSN of the most recently appended record; NULL if the log is empty.
    pub fn last_lsn(&self) -> Lsn {
        self.inner.lock().last_lsn
    }

    /// LSN the next append will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.inner.lock().tail
    }

    /// Read and decode the record at `lsn` (flushed or still buffered —
    /// rollback during normal processing reads records that may not yet be
    /// durable).
    pub fn read(&self, lsn: Lsn) -> Result<LogRecord> {
        let g = self.inner.lock();
        if lsn.is_null() || lsn < FIRST_LSN || lsn >= g.tail {
            return Err(Error::CorruptLog {
                lsn,
                reason: format!("lsn out of range (log ends at {})", g.tail),
            });
        }
        match frame::read_frame(&g.image, lsn)? {
            FrameRead::Ok { body, .. } => LogRecord::decode(lsn, body),
            FrameRead::End { .. } => Err(Error::CorruptLog {
                lsn,
                reason: "no valid frame at lsn".into(),
            }),
        }
    }

    /// Iterate records in LSN order starting at `from` (or the log start if
    /// `from` is NULL). Each `next()` re-acquires the internal lock, so the
    /// iterator may observe records appended after it was created.
    pub fn scan(&self, from: Lsn) -> LogIter<'_> {
        LogIter {
            mgr: self,
            at: if from.is_null() { FIRST_LSN } else { from },
        }
    }

    /// First LSN ever (the log start).
    pub fn first_lsn(&self) -> Lsn {
        FIRST_LSN
    }

    // --- master record ---------------------------------------------------

    /// Durably record the LSN of the latest complete checkpoint's begin
    /// record. Written atomically via rename.
    pub fn write_master(&self, ckpt_lsn: Lsn) -> Result<()> {
        crash_point!("wal.master.before");
        let tmp = self.master_path.with_extension("master.tmp");
        let mut body = ckpt_lsn.0.to_le_bytes().to_vec();
        let crc = ariesim_common::codec::crc32c(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        std::fs::write(&tmp, &body)?;
        crash_point!("wal.master.tmp_written");
        std::fs::rename(&tmp, &self.master_path)?;
        crash_point!("wal.master.after");
        Ok(())
    }

    // --- replication streaming -------------------------------------------

    /// Read a chunk of the durable log image for shipping to a standby:
    /// whole frames starting at `from` (log start if NULL), totalling at
    /// most `max_bytes` — except that the first frame always ships whole,
    /// so one oversized record cannot wedge the stream. Returns the raw
    /// bytes and the LSN one past the chunk (the `from` of the next call).
    /// An empty chunk means `from` is the durable end. Buffered-tail
    /// frames never ship: only log the primary cannot lose may reach a
    /// standby.
    pub fn read_durable_chunk(&self, from: Lsn, max_bytes: usize) -> Result<(Vec<u8>, Lsn)> {
        let g = self.inner.lock();
        let from = if from.is_null() { FIRST_LSN } else { from };
        if from < FIRST_LSN || from > g.durable_end {
            return Err(Error::CorruptLog {
                lsn: from,
                reason: format!("chunk start outside durable log (ends at {})", g.durable_end),
            });
        }
        let durable = &g.image[..g.durable_end.0 as usize];
        let mut at = from;
        while let FrameRead::Ok { next, .. } = frame::read_frame(durable, at)? {
            if at > from && (next.0 - from.0) as usize > max_bytes {
                break;
            }
            at = next;
            if (at.0 - from.0) as usize >= max_bytes {
                break;
            }
        }
        Ok((g.image[from.0 as usize..at.0 as usize].to_vec(), at))
    }

    /// Splice a shipped chunk (whole frames, as produced by
    /// [`LogManager::read_durable_chunk`] on a primary) onto this log at
    /// exactly the current tail. The standby's log stays a byte-identical
    /// prefix of the primary's, so primary LSNs are valid here verbatim;
    /// `at` guards against gaps, duplicates, and reordering. The chunk is
    /// CRC-validated frame by frame before any state changes, then written
    /// through to the file immediately: shipped log was already durable on
    /// the primary, and the standby must not apply records it could lose.
    pub fn ingest_frames(&self, at: Lsn, chunk: &[u8]) -> Result<()> {
        let mut g = self.inner.lock();
        if g.durable_end != g.tail {
            return Err(Error::Internal(
                "ingest_frames on a log with a buffered append tail".into(),
            ));
        }
        if at != g.tail {
            return Err(Error::CorruptLog {
                lsn: at,
                reason: format!("ingest chunk at {at}, but the log ends at {}", g.tail),
            });
        }
        if chunk.is_empty() {
            return Ok(());
        }
        let mut off = Lsn(0);
        let mut frames = 0u64;
        let mut last = Lsn::NULL;
        while (off.0 as usize) < chunk.len() {
            match frame::read_frame(chunk, off)? {
                FrameRead::Ok { next, .. } => {
                    last = Lsn(at.0 + off.0);
                    off = next;
                    frames += 1;
                }
                FrameRead::End { .. } => {
                    return Err(Error::CorruptLog {
                        lsn: Lsn(at.0 + off.0),
                        reason: "torn or corrupt frame in shipped chunk".into(),
                    });
                }
            }
        }
        // Write-through, with a crash point splitting the write so the
        // torture harness can leave a genuinely torn standby tail.
        g.file.seek(SeekFrom::Start(at.0))?;
        let half = chunk.len() / 2;
        g.file.write_all(&chunk[..half])?;
        crash_point!("wal.ingest.mid");
        g.file.write_all(&chunk[half..])?;
        if self.opts.fsync {
            g.file.sync_data()?;
        }
        g.image.extend_from_slice(chunk);
        g.tail = Lsn(g.image.len() as u64);
        g.durable_end = g.tail;
        g.last_lsn = last;
        // ordering: Release publishes the fsync'd prefix; Acquire readers of `flushed` may then skip the lock
        self.flushed.store(g.durable_end.0, Ordering::Release);
        self.stats.log_records.add(frames);
        self.stats.log_bytes.add(chunk.len() as u64);
        Ok(())
    }

    /// Read the master record; NULL if none has ever been written.
    pub fn read_master(&self) -> Result<Lsn> {
        let raw = match std::fs::read(&self.master_path) {
            Ok(r) => r,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Lsn::NULL),
            Err(e) => return Err(e.into()),
        };
        if raw.len() != 12 {
            return Err(Error::CorruptLog {
                lsn: Lsn::NULL,
                reason: "bad master record length".into(),
            });
        }
        let lsn = ariesim_common::codec::u64_at(&raw, 0);
        let crc = ariesim_common::codec::u32_at(&raw, 8);
        if ariesim_common::codec::crc32c(&raw[0..8]) != crc {
            return Err(Error::CorruptLog {
                lsn: Lsn::NULL,
                reason: "master record checksum mismatch".into(),
            });
        }
        Ok(Lsn(lsn))
    }
}

/// Iterator over log records; see [`LogManager::scan`].
pub struct LogIter<'a> {
    mgr: &'a LogManager,
    at: Lsn,
}

impl LogIter<'_> {
    /// LSN the next `next()` call will read.
    pub fn position(&self) -> Lsn {
        self.at
    }
}

impl Iterator for LogIter<'_> {
    type Item = Result<LogRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        let g = self.mgr.inner.lock();
        if self.at >= g.tail {
            return None;
        }
        match frame::read_frame(&g.image, self.at) {
            Ok(FrameRead::Ok { body, .. }) => {
                let rec = LogRecord::decode(self.at, body);
                self.at = Lsn(self.at.0 + frame::frame_len(body.len()));
                Some(rec)
            }
            Ok(FrameRead::End { .. }) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordKind, RmId};
    use ariesim_common::stats::new_stats;
    use ariesim_common::tmp::TempDir;
    use ariesim_common::{PageId, TxnId};

    fn mgr(dir: &TempDir) -> LogManager {
        LogManager::open(&dir.file("wal"), LogOptions::default(), new_stats()).unwrap()
    }

    fn upd(txn: u64, prev: Lsn, body: &[u8]) -> LogRecord {
        LogRecord::update(TxnId(txn), prev, RmId::Heap, PageId(1), body.to_vec())
    }

    #[test]
    fn append_read_roundtrip() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let l1 = m.append(&upd(1, Lsn::NULL, b"one"));
        let l2 = m.append(&upd(1, l1, b"two"));
        assert!(l1 < l2);
        let r = m.read(l2).unwrap();
        assert_eq!(r.prev_lsn, l1);
        assert_eq!(r.body, b"two");
        assert_eq!(m.last_lsn(), l2);
    }

    #[test]
    fn scan_returns_all_in_order() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let mut lsns = Vec::new();
        let mut prev = Lsn::NULL;
        for i in 0..10u8 {
            prev = m.append(&upd(1, prev, &[i]));
            lsns.push(prev);
        }
        let seen: Vec<Lsn> = m.scan(Lsn::NULL).map(|r| r.unwrap().lsn).collect();
        assert_eq!(seen, lsns);
        // Scan from the middle.
        let seen: Vec<Lsn> = m.scan(lsns[4]).map(|r| r.unwrap().lsn).collect();
        assert_eq!(seen, &lsns[4..]);
    }

    #[test]
    fn unflushed_tail_lost_on_reopen() {
        let dir = TempDir::new("wal");
        let path = dir.file("wal");
        let stats = new_stats();
        let m = LogManager::open(&path, LogOptions::default(), stats.clone()).unwrap();
        let l1 = m.append(&upd(1, Lsn::NULL, b"durable"));
        m.flush_to(l1).unwrap();
        let l2 = m.append(&upd(1, l1, b"lost"));
        assert!(m.read(l2).is_ok()); // readable while buffered
        drop(m); // crash: no flush
        let m2 = LogManager::open(&path, LogOptions::default(), new_stats()).unwrap();
        assert_eq!(m2.last_lsn(), l1);
        assert!(m2.read(l2).is_err());
        let survived: Vec<_> = m2.scan(Lsn::NULL).map(|r| r.unwrap()).collect();
        assert_eq!(survived.len(), 1);
        assert_eq!(survived[0].body, b"durable");
    }

    #[test]
    fn flush_is_group_flush() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let l1 = m.append(&upd(1, Lsn::NULL, b"a"));
        let l2 = m.append(&upd(1, l1, b"b"));
        m.flush_to(l1).unwrap();
        // l2 rode along.
        assert!(m.flushed_lsn() > l2);
    }

    #[test]
    fn flush_to_already_durable_is_noop() {
        let dir = TempDir::new("wal");
        let stats = new_stats();
        let m = LogManager::open(&dir.file("wal"), LogOptions::default(), stats.clone()).unwrap();
        let l1 = m.append(&upd(1, Lsn::NULL, b"a"));
        m.flush_to(l1).unwrap();
        let forces = stats.snapshot().log_forces;
        m.flush_to(l1).unwrap();
        assert_eq!(stats.snapshot().log_forces, forces);
    }

    #[test]
    fn noop_flush_does_not_serialize_behind_inflight_flush() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let l1 = m.append(&upd(1, Lsn::NULL, b"a"));
        m.flush_to(l1).unwrap();
        // Simulate an in-flight flush by holding the inner lock; a flush_to
        // for an already-durable LSN must return without acquiring it.
        let _held = m.inner.lock();
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|s| {
            s.spawn(|| {
                m.flush_to(l1).unwrap();
                tx.send(()).unwrap();
            });
            rx.recv_timeout(std::time::Duration::from_secs(2))
                .expect("no-op flush blocked behind held inner lock");
        });
    }

    #[test]
    fn reopen_resumes_lsn_sequence() {
        let dir = TempDir::new("wal");
        let path = dir.file("wal");
        let m = LogManager::open(&path, LogOptions::default(), new_stats()).unwrap();
        let l1 = m.append(&upd(1, Lsn::NULL, b"a"));
        m.flush_all().unwrap();
        drop(m);
        let m2 = LogManager::open(&path, LogOptions::default(), new_stats()).unwrap();
        let l2 = m2.append(&upd(2, Lsn::NULL, b"b"));
        assert!(l2 > l1);
        assert_eq!(m2.read(l1).unwrap().body, b"a");
        assert_eq!(m2.read(l2).unwrap().body, b"b");
    }

    #[test]
    fn torn_tail_truncated_on_open() {
        let dir = TempDir::new("wal");
        let path = dir.file("wal");
        let m = LogManager::open(&path, LogOptions::default(), new_stats()).unwrap();
        let l1 = m.append(&upd(1, Lsn::NULL, b"keep"));
        m.append(&upd(1, l1, b"torn-away"));
        m.flush_all().unwrap();
        drop(m);
        // Tear the last record's final byte off.
        let mut raw = std::fs::read(&path).unwrap();
        raw.truncate(raw.len() - 1);
        std::fs::write(&path, &raw).unwrap();
        let m2 = LogManager::open(&path, LogOptions::default(), new_stats()).unwrap();
        let recs: Vec<_> = m2.scan(Lsn::NULL).map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].body, b"keep");
        // New appends land after the truncation point.
        let l3 = m2.append(&upd(2, Lsn::NULL, b"new"));
        assert_eq!(m2.read(l3).unwrap().body, b"new");
    }

    #[test]
    fn master_record_roundtrip() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        assert_eq!(m.read_master().unwrap(), Lsn::NULL);
        m.write_master(Lsn(777)).unwrap();
        assert_eq!(m.read_master().unwrap(), Lsn(777));
        m.write_master(Lsn(888)).unwrap();
        assert_eq!(m.read_master().unwrap(), Lsn(888));
    }

    #[test]
    fn read_null_or_out_of_range_fails() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        assert!(m.read(Lsn::NULL).is_err());
        assert!(m.read(Lsn(1 << 40)).is_err());
    }

    #[test]
    fn control_records_roundtrip_all_kinds() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        for kind in [
            RecordKind::Begin,
            RecordKind::Commit,
            RecordKind::Abort,
            RecordKind::End,
        ] {
            let lsn = m.append(&LogRecord::control(TxnId(3), Lsn::NULL, kind));
            assert_eq!(m.read(lsn).unwrap().kind, kind);
        }
    }

    #[test]
    fn durable_chunk_ships_only_flushed_frames() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let l1 = m.append(&upd(1, Lsn::NULL, b"durable"));
        m.flush_all().unwrap();
        m.append(&upd(1, l1, b"still buffered"));
        let (chunk, next) = m.read_durable_chunk(Lsn::NULL, 1 << 20).unwrap();
        assert_eq!(next, m.flushed_lsn());
        assert!(!chunk.is_empty());
        // The buffered record is not in the chunk.
        let (rest, end) = m.read_durable_chunk(next, 1 << 20).unwrap();
        assert!(rest.is_empty());
        assert_eq!(end, next);
    }

    #[test]
    fn durable_chunk_respects_max_bytes_on_frame_boundaries() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let mut prev = Lsn::NULL;
        for i in 0..8u8 {
            prev = m.append(&upd(1, prev, &[i; 32]));
        }
        m.flush_all().unwrap();
        // Walk the log in tiny chunks; every chunk must parse as whole
        // frames, and concatenated they must equal one big chunk.
        let (all, end) = m.read_durable_chunk(Lsn::NULL, 1 << 20).unwrap();
        let mut walked = Vec::new();
        let mut at = m.first_lsn();
        while at < end {
            let (chunk, next) = m.read_durable_chunk(at, 40).unwrap();
            assert!(next > at, "no progress at {at}");
            walked.extend_from_slice(&chunk);
            at = next;
        }
        assert_eq!(walked, all);
    }

    #[test]
    fn ingest_extends_log_and_survives_reopen() {
        let dir = TempDir::new("wal");
        let primary = LogManager::open(&dir.file("p"), LogOptions::default(), new_stats()).unwrap();
        let standby_path = dir.file("s");
        let standby =
            LogManager::open(&standby_path, LogOptions::default(), new_stats()).unwrap();
        let mut prev = Lsn::NULL;
        for i in 0..5u8 {
            prev = m_append(&primary, i, prev);
        }
        primary.flush_all().unwrap();
        let mut at = standby.next_lsn();
        loop {
            let (chunk, next) = primary.read_durable_chunk(at, 64).unwrap();
            if chunk.is_empty() {
                break;
            }
            standby.ingest_frames(at, &chunk).unwrap();
            at = next;
        }
        assert_eq!(standby.next_lsn(), primary.flushed_lsn());
        assert_eq!(standby.last_lsn(), primary.last_lsn());
        // Ingested log is durable without any flush call.
        drop(standby);
        let re = LogManager::open(&standby_path, LogOptions::default(), new_stats()).unwrap();
        assert_eq!(re.next_lsn(), primary.flushed_lsn());
        let bodies: Vec<_> = re.scan(Lsn::NULL).map(|r| r.unwrap().body).collect();
        let expect: Vec<_> = primary.scan(Lsn::NULL).map(|r| r.unwrap().body).collect();
        assert_eq!(bodies, expect);
    }

    fn m_append(m: &LogManager, i: u8, prev: Lsn) -> Lsn {
        m.append(&upd(1, prev, &[i; 16]))
    }

    #[test]
    fn ingest_rejects_gap_and_garbage() {
        let dir = TempDir::new("wal");
        let primary = mgr(&dir);
        let standby =
            LogManager::open(&dir.file("s2"), LogOptions::default(), new_stats()).unwrap();
        primary.append(&upd(1, Lsn::NULL, b"x"));
        primary.flush_all().unwrap();
        let (chunk, next) = primary.read_durable_chunk(Lsn::NULL, 1 << 20).unwrap();
        // Wrong position: chunk claims to start past the standby's tail.
        assert!(standby.ingest_frames(next, &chunk).is_err());
        // Corrupt payload: flip a byte.
        let mut bad = chunk.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(standby
            .ingest_frames(standby.next_lsn(), &bad)
            .is_err());
        // Clean chunk at the right position still works afterwards.
        standby.ingest_frames(standby.next_lsn(), &chunk).unwrap();
        assert_eq!(standby.next_lsn(), next);
    }

    #[test]
    fn concurrent_appends_get_distinct_lsns() {
        let dir = TempDir::new("wal");
        let m = mgr(&dir);
        let lsns: Vec<Lsn> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let m = &m;
                    s.spawn(move || {
                        (0..100)
                            .map(|i| m.append(&upd(t, Lsn::NULL, &[t as u8, i as u8])))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let mut sorted = lsns.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 400);
        assert_eq!(m.scan(Lsn::NULL).count(), 400);
    }
}
