//! The log record envelope.
//!
//! A [`LogRecord`] is the typed header every subsystem shares plus an opaque
//! body interpreted only by the resource manager that wrote it. The envelope
//! carries everything ARIES's passes need without understanding bodies:
//! analysis reads `kind`/`txn`/`page`, redo reads `page`/`rm`, undo follows
//! `prev_lsn`/`undo_next_lsn` chains.

use ariesim_common::codec::{Reader, Writer};
use ariesim_common::{Error, Lsn, PageId, Result, TxnId};

/// Which resource manager owns the record body.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum RmId {
    /// Transaction-control and checkpoint records; body owned by this crate.
    Txn = 0,
    /// Heap record manager (`ariesim-record`).
    Heap = 1,
    /// B+-tree index manager (`ariesim-btree`).
    Index = 2,
    /// Page allocation space map (`ariesim-storage`).
    Space = 3,
}

impl RmId {
    pub fn from_u8(v: u8) -> Option<RmId> {
        Some(match v {
            0 => RmId::Txn,
            1 => RmId::Heap,
            2 => RmId::Index,
            3 => RmId::Space,
            _ => return None,
        })
    }
}

/// The kind of a log record, from the envelope's point of view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum RecordKind {
    /// Normal redo-undo update written during forward processing — and, per
    /// the paper §3 ("Undo Processing"), also by SMOs performed *during*
    /// undo, which must themselves be undoable.
    Update,
    /// Compensation log record: redo-only; `undo_next_lsn` names the next
    /// record of the transaction still to be undone.
    Clr,
    /// Dummy CLR ending a nested top action (paper §1.2). Redo-only, no body
    /// effect on any page; exists purely for its `undo_next_lsn`.
    DummyClr,
    /// Transaction begin. (Written for readability of dumps; ARIES proper can
    /// infer begins, and analysis here does not rely on it.)
    Begin,
    /// Transaction commit: forced to stable storage before commit returns.
    Commit,
    /// Transaction entered rollback.
    Abort,
    /// Transaction finished (after commit processing or total rollback).
    End,
    /// Fuzzy checkpoint begin.
    CkptBegin,
    /// Fuzzy checkpoint end; body is [`CheckpointData`].
    CkptEnd,
}

impl RecordKind {
    pub fn from_u8(v: u8) -> Option<RecordKind> {
        use RecordKind::*;
        Some(match v {
            0 => Update,
            1 => Clr,
            2 => DummyClr,
            3 => Begin,
            4 => Commit,
            5 => Abort,
            6 => End,
            7 => CkptBegin,
            8 => CkptEnd,
            _ => return None,
        })
    }

    /// Records that must be undone when their transaction rolls back.
    pub fn is_undoable(self) -> bool {
        matches!(self, RecordKind::Update)
    }

    /// Records whose body is replayed against a page during the redo pass.
    pub fn is_redoable(self) -> bool {
        matches!(self, RecordKind::Update | RecordKind::Clr)
    }
}

/// A fully decoded log record.
#[derive(Clone, Debug)]
pub struct LogRecord {
    /// Assigned by the log manager: the record's offset in the log address
    /// space. Not serialized (it is implied by position).
    pub lsn: Lsn,
    /// Previous record of the same transaction ([`Lsn::NULL`] for the first).
    pub prev_lsn: Lsn,
    /// Owning transaction; [`TxnId::NONE`] for checkpoints.
    pub txn: TxnId,
    pub kind: RecordKind,
    /// For CLRs and dummy CLRs: next record to undo. NULL otherwise.
    pub undo_next_lsn: Lsn,
    pub rm: RmId,
    /// Primary page this record's redo applies to; NULL for non-page records.
    /// Page-oriented redo (paper §3 "Logging") fixes exactly this page.
    pub page: PageId,
    /// RM-interpreted body.
    pub body: Vec<u8>,
}

impl LogRecord {
    /// A forward-processing update record.
    pub fn update(txn: TxnId, prev_lsn: Lsn, rm: RmId, page: PageId, body: Vec<u8>) -> LogRecord {
        LogRecord {
            lsn: Lsn::NULL,
            prev_lsn,
            txn,
            kind: RecordKind::Update,
            undo_next_lsn: Lsn::NULL,
            rm,
            page,
            body,
        }
    }

    /// A compensation record for the undo of `undone`, continuing the undo
    /// chain at `undone.prev_lsn`.
    pub fn clr(
        txn: TxnId,
        prev_lsn: Lsn,
        rm: RmId,
        page: PageId,
        undo_next: Lsn,
        body: Vec<u8>,
    ) -> LogRecord {
        LogRecord {
            lsn: Lsn::NULL,
            prev_lsn,
            txn,
            kind: RecordKind::Clr,
            undo_next_lsn: undo_next,
            rm,
            page,
            body,
        }
    }

    /// The dummy CLR that commits a nested top action: `undo_next` is the LSN
    /// of the transaction's last record *before* the NTA began.
    pub fn dummy_clr(txn: TxnId, prev_lsn: Lsn, undo_next: Lsn) -> LogRecord {
        LogRecord {
            lsn: Lsn::NULL,
            prev_lsn,
            txn,
            kind: RecordKind::DummyClr,
            undo_next_lsn: undo_next,
            rm: RmId::Txn,
            page: PageId::NULL,
            body: Vec::new(),
        }
    }

    /// A transaction-control record with no body.
    pub fn control(txn: TxnId, prev_lsn: Lsn, kind: RecordKind) -> LogRecord {
        debug_assert!(matches!(
            kind,
            RecordKind::Begin | RecordKind::Commit | RecordKind::Abort | RecordKind::End
        ));
        LogRecord {
            lsn: Lsn::NULL,
            prev_lsn,
            txn,
            kind,
            undo_next_lsn: Lsn::NULL,
            rm: RmId::Txn,
            page: PageId::NULL,
            body: Vec::new(),
        }
    }

    /// Serialize the record (without the frame; see [`crate::frame`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(32 + self.body.len());
        w.lsn(self.prev_lsn)
            .txn_id(self.txn)
            .u8(self.kind as u8)
            .lsn(self.undo_next_lsn)
            .u8(self.rm as u8)
            .page_id(self.page)
            .raw(&self.body);
        w.into_vec()
    }

    /// Decode a record serialized by [`encode`](Self::encode). `lsn` is the
    /// frame's position, supplied by the reader.
    pub fn decode(lsn: Lsn, buf: &[u8]) -> Result<LogRecord> {
        let mut r = Reader::new(buf);
        let prev_lsn = r.lsn()?;
        let txn = r.txn_id()?;
        let kind_raw = r.u8()?;
        let kind = RecordKind::from_u8(kind_raw).ok_or_else(|| Error::CorruptLog {
            lsn,
            reason: format!("bad record kind {kind_raw}"),
        })?;
        let undo_next_lsn = r.lsn()?;
        let rm_raw = r.u8()?;
        let rm = RmId::from_u8(rm_raw).ok_or_else(|| Error::CorruptLog {
            lsn,
            reason: format!("bad rm id {rm_raw}"),
        })?;
        let page = r.page_id()?;
        let body = r.rest().to_vec();
        Ok(LogRecord {
            lsn,
            prev_lsn,
            txn,
            kind,
            undo_next_lsn,
            rm,
            page,
            body,
        })
    }
}

/// State of a transaction in a checkpoint's transaction table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum TxnState {
    /// Forward processing.
    InFlight = 0,
    /// Rolling back.
    Aborting = 1,
}

impl TxnState {
    pub fn from_u8(v: u8) -> Option<TxnState> {
        Some(match v {
            0 => TxnState::InFlight,
            1 => TxnState::Aborting,
            _ => return None,
        })
    }
}

/// One dirty-page-table entry: the page and its recovery LSN (the LSN of the
/// earliest record that might not be on disk).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DptEntry {
    pub page: PageId,
    pub rec_lsn: Lsn,
}

/// One transaction-table entry in a checkpoint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TxnCkptEntry {
    pub txn: TxnId,
    pub state: TxnState,
    pub last_lsn: Lsn,
    pub undo_next_lsn: Lsn,
}

/// Body of a [`RecordKind::CkptEnd`] record: the fuzzy dirty page table and
/// transaction table as of the checkpoint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckpointData {
    pub dpt: Vec<DptEntry>,
    pub txns: Vec<TxnCkptEntry>,
    /// Highest transaction id handed out, so restart resumes the sequence.
    pub max_txn_id: u64,
}

impl CheckpointData {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.max_txn_id);
        w.u32(self.dpt.len() as u32);
        for e in &self.dpt {
            w.page_id(e.page).lsn(e.rec_lsn);
        }
        w.u32(self.txns.len() as u32);
        for t in &self.txns {
            w.txn_id(t.txn)
                .u8(t.state as u8)
                .lsn(t.last_lsn)
                .lsn(t.undo_next_lsn);
        }
        w.into_vec()
    }

    pub fn decode(lsn: Lsn, buf: &[u8]) -> Result<CheckpointData> {
        let mut r = Reader::new(buf);
        let max_txn_id = r.u64()?;
        let n_dpt = r.u32()?;
        let mut dpt = Vec::with_capacity(n_dpt as usize);
        for _ in 0..n_dpt {
            dpt.push(DptEntry {
                page: r.page_id()?,
                rec_lsn: r.lsn()?,
            });
        }
        let n_txn = r.u32()?;
        let mut txns = Vec::with_capacity(n_txn as usize);
        for _ in 0..n_txn {
            let txn = r.txn_id()?;
            let state_raw = r.u8()?;
            let state = TxnState::from_u8(state_raw).ok_or_else(|| Error::CorruptLog {
                lsn,
                reason: format!("bad txn state {state_raw}"),
            })?;
            txns.push(TxnCkptEntry {
                txn,
                state,
                last_lsn: r.lsn()?,
                undo_next_lsn: r.lsn()?,
            });
        }
        Ok(CheckpointData {
            dpt,
            txns,
            max_txn_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrip() {
        let rec = LogRecord::update(
            TxnId(7),
            Lsn(100),
            RmId::Index,
            PageId(3),
            b"body-bytes".to_vec(),
        );
        let enc = rec.encode();
        let dec = LogRecord::decode(Lsn(555), &enc).unwrap();
        assert_eq!(dec.lsn, Lsn(555));
        assert_eq!(dec.prev_lsn, Lsn(100));
        assert_eq!(dec.txn, TxnId(7));
        assert_eq!(dec.kind, RecordKind::Update);
        assert_eq!(dec.rm, RmId::Index);
        assert_eq!(dec.page, PageId(3));
        assert_eq!(dec.body, b"body-bytes");
    }

    #[test]
    fn clr_carries_undo_next() {
        let rec = LogRecord::clr(TxnId(1), Lsn(50), RmId::Heap, PageId(9), Lsn(20), vec![1]);
        let dec = LogRecord::decode(Lsn(60), &rec.encode()).unwrap();
        assert_eq!(dec.kind, RecordKind::Clr);
        assert_eq!(dec.undo_next_lsn, Lsn(20));
        assert!(!dec.kind.is_undoable());
        assert!(dec.kind.is_redoable());
    }

    #[test]
    fn dummy_clr_shape() {
        let rec = LogRecord::dummy_clr(TxnId(2), Lsn(99), Lsn(40));
        assert_eq!(rec.kind, RecordKind::DummyClr);
        assert_eq!(rec.undo_next_lsn, Lsn(40));
        assert!(rec.body.is_empty());
        assert!(rec.page.is_null());
        assert!(!rec.kind.is_redoable());
    }

    #[test]
    fn bad_kind_byte_is_corrupt() {
        let mut enc = LogRecord::control(TxnId(1), Lsn::NULL, RecordKind::Begin).encode();
        enc[16] = 200; // kind byte offset: 8 (prev) + 8 (txn)
        assert!(matches!(
            LogRecord::decode(Lsn(1), &enc),
            Err(Error::CorruptLog { .. })
        ));
    }

    #[test]
    fn checkpoint_data_roundtrip() {
        let data = CheckpointData {
            dpt: vec![
                DptEntry {
                    page: PageId(4),
                    rec_lsn: Lsn(10),
                },
                DptEntry {
                    page: PageId(8),
                    rec_lsn: Lsn(30),
                },
            ],
            txns: vec![TxnCkptEntry {
                txn: TxnId(5),
                state: TxnState::Aborting,
                last_lsn: Lsn(44),
                undo_next_lsn: Lsn(40),
            }],
            max_txn_id: 9,
        };
        let dec = CheckpointData::decode(Lsn(1), &data.encode()).unwrap();
        assert_eq!(dec, data);
    }

    #[test]
    fn empty_checkpoint_roundtrip() {
        let data = CheckpointData::default();
        assert_eq!(CheckpointData::decode(Lsn(1), &data.encode()).unwrap(), data);
    }

    #[test]
    fn only_updates_are_undoable() {
        use RecordKind::*;
        for k in [Clr, DummyClr, Begin, Commit, Abort, End, CkptBegin, CkptEnd] {
            assert!(!k.is_undoable(), "{k:?}");
        }
        assert!(Update.is_undoable());
    }
}
