//! On-disk log framing.
//!
//! Each record is stored as `[len: u32][crc32c(body): u32][body]`. The CRC
//! lets restart distinguish a *torn tail* (a record that was being written
//! when the system crashed) from a clean end of log: scanning stops at the
//! first frame that is incomplete, zero-length, or fails its checksum, and
//! everything before that point is trusted.
//!
//! The LSN of a record is the byte offset of its frame in the log file, so
//! LSNs are dense, monotonic, and directly seekable.

use ariesim_common::codec::crc32c;
use ariesim_common::{Lsn, Result};

/// Bytes of framing overhead per record.
pub const FRAME_HEADER_LEN: usize = 8;

/// Log file magic: identifies the file and its format version.
pub const LOG_MAGIC: &[u8; 16] = b"ARIESIM-LOG-v01\0";

/// First valid LSN: records start right after the file magic. Conveniently
/// nonzero, so [`Lsn::NULL`] never collides with a real record.
pub const FIRST_LSN: Lsn = Lsn(LOG_MAGIC.len() as u64);

/// Serialize a frame around an encoded record body.
pub fn encode_frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32c(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Total on-disk size of a record with the given body length.
pub fn frame_len(body_len: usize) -> u64 {
    (FRAME_HEADER_LEN + body_len) as u64
}

/// Outcome of attempting to read one frame.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameRead<'a> {
    /// A valid frame: the body and the LSN of the *next* frame.
    Ok { body: &'a [u8], next: Lsn },
    /// End of the trustworthy log: truncated header/body, zero length, or
    /// checksum mismatch. `at` is where the log effectively ends.
    End { at: Lsn },
}

/// Parse the frame at offset `at` within `buf`, where `buf` is the whole log
/// image and `at` is an absolute LSN.
pub fn read_frame(buf: &[u8], at: Lsn) -> Result<FrameRead<'_>> {
    let off = at.0 as usize;
    if off + FRAME_HEADER_LEN > buf.len() {
        return Ok(FrameRead::End { at });
    }
    let len = ariesim_common::codec::u32_at(buf, off) as usize;
    if len == 0 {
        return Ok(FrameRead::End { at });
    }
    let want_crc = ariesim_common::codec::u32_at(buf, off + 4);
    let body_start = off + FRAME_HEADER_LEN;
    if body_start + len > buf.len() {
        return Ok(FrameRead::End { at });
    }
    let body = &buf[body_start..body_start + len];
    if crc32c(body) != want_crc {
        return Ok(FrameRead::End { at });
    }
    Ok(FrameRead::Ok {
        body,
        next: Lsn(at.0 + frame_len(len)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(bodies: &[&[u8]]) -> Vec<u8> {
        let mut buf = LOG_MAGIC.to_vec();
        for b in bodies {
            buf.extend_from_slice(&encode_frame(b));
        }
        buf
    }

    #[test]
    fn sequential_read() {
        let buf = log_with(&[b"first", b"second record"]);
        let FrameRead::Ok { body, next } = read_frame(&buf, FIRST_LSN).unwrap() else {
            panic!("expected frame");
        };
        assert_eq!(body, b"first");
        let FrameRead::Ok { body, next } = read_frame(&buf, next).unwrap() else {
            panic!("expected frame");
        };
        assert_eq!(body, b"second record");
        assert_eq!(read_frame(&buf, next).unwrap(), FrameRead::End { at: next });
    }

    #[test]
    fn torn_tail_header() {
        let mut buf = log_with(&[b"complete"]);
        let end = Lsn(buf.len() as u64);
        buf.extend_from_slice(&[42, 0, 0]); // 3 bytes of a 4-byte length
        assert_eq!(read_frame(&buf, end).unwrap(), FrameRead::End { at: end });
    }

    #[test]
    fn torn_tail_body() {
        let mut buf = log_with(&[b"complete"]);
        let end = Lsn(buf.len() as u64);
        let mut frame = encode_frame(b"this record was cut short");
        frame.truncate(frame.len() - 5);
        buf.extend_from_slice(&frame);
        assert_eq!(read_frame(&buf, end).unwrap(), FrameRead::End { at: end });
    }

    #[test]
    fn corrupt_body_fails_crc() {
        let mut buf = log_with(&[b"will be corrupted"]);
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        assert_eq!(
            read_frame(&buf, FIRST_LSN).unwrap(),
            FrameRead::End { at: FIRST_LSN }
        );
    }

    #[test]
    fn zero_len_is_end() {
        let mut buf = log_with(&[]);
        buf.extend_from_slice(&[0u8; 16]); // preallocated zeroed region
        assert_eq!(
            read_frame(&buf, FIRST_LSN).unwrap(),
            FrameRead::End { at: FIRST_LSN }
        );
    }

    #[test]
    fn lsn_arithmetic_matches_frame_len() {
        let buf = log_with(&[b"abc"]);
        let FrameRead::Ok { next, .. } = read_frame(&buf, FIRST_LSN).unwrap() else {
            panic!()
        };
        assert_eq!(next.0, FIRST_LSN.0 + frame_len(3));
    }
}
