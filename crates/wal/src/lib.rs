//! Write-ahead log.
//!
//! Implements the logging substrate ARIES/IM assumes (paper §1.2 and
//! \[MHLPS92\]):
//!
//! * every log record carries its transaction's backward chain (`prev_lsn`);
//! * compensation log records (CLRs) are **redo-only** and carry an
//!   `undo_next_lsn` pointing at the next record to undo, which bounds
//!   logging during (possibly repeated) rollbacks;
//! * *dummy CLRs* terminate nested top actions: their `undo_next_lsn` points
//!   at the record preceding the NTA, so a later rollback of the enclosing
//!   transaction skips the NTA's records entirely (this is how SMOs survive
//!   the rollback of the transaction that performed them);
//! * the log is the unit of durability: pages may be written any time after
//!   their updates are logged (*steal*), and commits force the log, not the
//!   pages (*no-force*).
//!
//! The on-disk format is length-prefixed, CRC-framed records so restart can
//! tell a torn tail from a clean end of log ([`frame`]). The record *envelope*
//! (who, what kind, which page) is typed here; the *body* is an opaque byte
//! string owned by the resource manager that wrote it ([`record`]). This is
//! ARIES's resource-manager architecture: recovery dispatches bodies back to
//! the RM identified by [`record::RmId`].

pub mod buffer;
pub mod frame;
pub mod manager;
pub mod record;
pub mod rm;

pub use manager::{LogManager, LogOptions};
pub use record::{CheckpointData, DptEntry, LogRecord, RecordKind, RmId, TxnCkptEntry, TxnState};
pub use rm::{ChainLogger, ResourceManager};
