//! Lock-free log-buffer ring: the append side of the WAL pipeline.
//!
//! Appenders claim a byte range with one `fetch_add` on `reserved` (the
//! claim *is* the LSN assignment — LSNs are byte offsets), copy their frame
//! into the ring without any lock, and publish completion by adding the
//! byte count to the per-segment `filled` counters. The drain side (the
//! flusher, or a group-commit leader) computes the longest *fully
//! published* prefix — no holes — and copies it out; `drained` trails
//! behind and bounds how far ahead `reserved` may run (backpressure).
//!
//! # Counter design
//!
//! `filled[s]` is **cumulative over the whole log**, never reset per lap:
//! after `n` complete laps plus a partial lap reaching byte `off` of the
//! ring, segment `s` holds exactly
//!
//! ```text
//! expected(s, base+off) = n*seg + clamp(off - s*seg, 0, seg)
//! ```
//!
//! published bytes. Resetting per lap would race a slow publisher from lap
//! `n` against a fast one from lap `n+1`; a cumulative counter makes their
//! contributions commute.
//!
//! # The published-prefix snapshot rule
//!
//! `published_to` walks segment windows and advances over a window iff
//! `filled[s]` equals the full-window expectation. Comparing against an
//! arbitrary target is unsound — a hole below the target can be masked by
//! bytes published *above* it in the same segment. Two rules make the
//! equality test exact:
//!
//! * **Snapshot clamp (intra-lap):** the target is clamped to a snapshot
//!   of `reserved` taken **after** the `filled` read (the Acquire on
//!   `filled` forbids hoisting the `reserved` load above it), so every
//!   contribution in the `filled` snapshot came from a reservation made
//!   before the `reserved` read.
//! * **Segment-floor backpressure (cross-lap):** [`LogBuffer::has_space`]
//!   holds an appender out of a segment's *next lap* until the drain
//!   watermark has left that segment entirely (`end ≤ seg_floor(drained)
//!   + cap`, not `end ≤ drained + cap`). Without it, a publisher lapping
//!   the segment that still contains the watermark bumps `filled[s]` past
//!   the current-lap expectation and the equality can never hold again:
//!   the drain watermark freezes, the ring fills, and every appender
//!   spins in `has_space` — a permanent livelock, not a stale snapshot.
//!   The floor costs at most one segment of usable capacity, which is why
//!   a single reservation must fit in `cap - seg` bytes
//!   ([`LogBuffer::max_reservation`]).
//!
//! With both rules, at target `min(window_end, reserved)` equality holds
//! iff there is no hole. Failure is conservative: the caller retries
//! (spin-to-stable watermark).

use ariesim_common::msync::AtomicU64;
use std::sync::atomic::Ordering;

/// Raw ring storage. Appenders write disjoint reserved ranges concurrently
/// while the drainer reads only fully published (and therefore no longer
/// written) ranges, so unsynchronized byte access is race-free by
/// construction; the synchronization lives in `reserved`/`filled`/`drained`.
struct Slots {
    ptr: *mut u8,
    len: usize,
}

// Safety: see `Slots` — all concurrent access is to disjoint byte ranges,
// coordinated through the atomic counters.
unsafe impl Send for Slots {}
unsafe impl Sync for Slots {}

impl Drop for Slots {
    fn drop(&mut self) {
        // Reconstruct the Box allocated in `LogBuffer::new`.
        unsafe {
            drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                self.ptr, self.len,
            )));
        }
    }
}

/// Bounded in-memory segment ring for lock-free log appends.
pub struct LogBuffer {
    /// LSN mapped to ring offset 0 at open; fixed for the buffer's life.
    base: u64,
    /// Segment size in bytes (power of two).
    seg: u64,
    /// Total capacity = seg * nsegs (power of two).
    cap: u64,
    slots: Slots,
    /// Next LSN to hand out. Claiming a range is one `fetch_add` here.
    reserved: AtomicU64,
    /// LSN below which the drainer has copied everything out; appenders may
    /// not reserve past `drained + cap` (backpressure).
    drained: AtomicU64,
    /// Cumulative published-bytes counter per segment; see module docs.
    filled: Vec<AtomicU64>,
}

impl LogBuffer {
    /// Create a ring whose offset 0 corresponds to LSN `base`.
    pub fn new(base: u64, seg_bytes: u64, nsegs: u64) -> LogBuffer {
        assert!(seg_bytes.is_power_of_two(), "segment size must be 2^k");
        assert!(nsegs.is_power_of_two(), "segment count must be 2^k");
        let cap = seg_bytes * nsegs;
        let slab = vec![0u8; cap as usize].into_boxed_slice();
        let len = slab.len();
        let ptr = Box::into_raw(slab) as *mut u8;
        LogBuffer {
            base,
            seg: seg_bytes,
            cap,
            slots: Slots { ptr, len },
            reserved: AtomicU64::new(base),
            drained: AtomicU64::new(base),
            filled: (0..nsegs).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Ring capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.cap
    }

    /// Claim `len` bytes; returns the start LSN. The caller must wait for
    /// [`LogBuffer::has_space`] before copying in (the claim itself never
    /// blocks — LSN order is decided here, space is awaited after).
    pub fn reserve(&self, len: u64) -> u64 {
        // ordering: Relaxed — the claim only orders the LSN counter itself;
        // the copied bytes are published by the Release in `publish`.
        self.reserved.fetch_add(len, Ordering::Relaxed)
    }

    /// Claim `[start, start+len)` only if `start` is exactly the current
    /// watermark. Used by standby ingest, which must not race appenders: a
    /// concurrent reservation makes the CAS fail and the caller error out.
    pub fn try_reserve_at(&self, start: u64, len: u64) -> bool {
        self.reserved
            // ordering: Relaxed — same claim-only role as `reserve`; the
            // bytes themselves are published through `filled` / `drained`.
            .compare_exchange(start, start + len, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// True when the range ending at `end` fits in the ring. The bound is
    /// the *segment floor* of the drain watermark plus the capacity — not
    /// the watermark itself — so no byte of a segment's next lap is written
    /// (and published) while the watermark still sits inside that segment.
    /// See the cross-lap rule in the module docs: admitting such a publish
    /// wedges `published_to` permanently.
    pub fn has_space(&self, end: u64) -> bool {
        // ordering: Acquire pairs with the Release store in `mark_drained`,
        // so overwriting a drained range happens-after its copy-out.
        let d = self.drained.load(Ordering::Acquire);
        end <= d - (d - self.base) % self.seg + self.cap
    }

    /// Largest reservation `has_space` can ever admit: one segment of the
    /// capacity is sacrificed to the cross-lap backpressure rule (module
    /// docs), so callers must bound their frames by `cap - seg`.
    pub fn max_reservation(&self) -> u64 {
        self.cap - self.seg
    }

    /// Current reservation watermark (the next LSN to be handed out).
    pub fn reserved(&self) -> u64 {
        // ordering: Relaxed — a monotone watermark read; any needed
        // happens-before comes from `filled` (see `published_to`).
        self.reserved.load(Ordering::Relaxed)
    }

    /// Current drain watermark.
    pub fn drained(&self) -> u64 {
        // ordering: Acquire pairs with the Release in `mark_drained` so the
        // caller may reuse the space below without racing the copy-out.
        self.drained.load(Ordering::Acquire)
    }

    /// Copy `bytes` into the ring at LSN `start`. The caller must hold the
    /// reservation `[start, start+len)` and have awaited `has_space`.
    pub fn copy_in(&self, start: u64, bytes: &[u8]) {
        debug_assert!(bytes.len() as u64 <= self.cap);
        let mut off = ((start - self.base) & (self.cap - 1)) as usize;
        let mut src = bytes;
        while !src.is_empty() {
            let n = src.len().min(self.cap as usize - off);
            // Safety: the reservation gives this thread exclusive access to
            // these ring bytes until they are published and drained.
            unsafe {
                std::ptr::copy_nonoverlapping(src.as_ptr(), self.slots.ptr.add(off), n);
            }
            src = &src[n..];
            off = 0;
        }
    }

    /// Publish the copied range `[start, start+len)`: add its bytes to the
    /// per-segment counters. A range spanning segment boundaries publishes
    /// each window separately (this is the "torn reservation" the drain
    /// side's spin-to-stable watermark must tolerate).
    pub fn publish(&self, start: u64, len: u64) {
        let mut at = start;
        let end = start + len;
        while at < end {
            let s = self.seg_index(at);
            let window_end = (at - (at - self.base) % self.seg) + self.seg;
            let n = end.min(window_end) - at;
            // ordering: Release publishes the copied bytes to the Acquire
            // load in `published_to`; multiple publishers on one segment
            // form a release sequence headed by each RMW, so an Acquire
            // read of the sum synchronizes with every contributor.
            self.filled[s].fetch_add(n, Ordering::Release);
            at += n;
        }
    }

    /// Largest LSN `p ≥ from` such that every byte in `[from, p)` is
    /// published, computed per the snapshot rule in the module docs. May
    /// conservatively return early; callers retry (spin-to-stable).
    pub fn published_to(&self, from: u64) -> u64 {
        let mut at = from;
        loop {
            let s = self.seg_index(at);
            let window_end = (at - (at - self.base) % self.seg) + self.seg;
            // ordering: Acquire makes the copied bytes of every publisher
            // visible (release-sequence on the fetch_adds) and forbids
            // hoisting the `reserved` load below above this read — the
            // snapshot-order requirement for soundness (module docs).
            let f = self.filled[s].load(Ordering::Acquire);
            // ordering: Relaxed — clamping target; read *after* `filled`.
            let r = self.reserved.load(Ordering::Relaxed);
            let target = window_end.min(r);
            if target <= at {
                return at;
            }
            if f != self.expected(s, target) {
                return at; // hole (or stale snapshot): caller retries
            }
            at = target;
            if target < window_end {
                return at; // reached the reservation watermark
            }
        }
    }

    /// Longest fully published prefix starting at the drain watermark.
    pub fn published(&self) -> u64 {
        self.published_to(self.drained())
    }

    /// Copy the published range `[from, to)` out of the ring into `out`.
    /// Caller must have verified publication (via [`LogBuffer::published_to`])
    /// and be the sole drainer. Call [`LogBuffer::mark_drained`] after the
    /// bytes have been secured (e.g. appended to the durable image).
    pub fn copy_out(&self, from: u64, to: u64, out: &mut Vec<u8>) {
        debug_assert!(to - from <= self.cap);
        let mut at = from;
        while at < to {
            let off = ((at - self.base) & (self.cap - 1)) as usize;
            let n = ((to - at) as usize).min(self.cap as usize - off);
            // Safety: `[from, to)` is published — all writers are done — and
            // not yet drained, so no writer may touch these bytes.
            unsafe {
                out.extend_from_slice(std::slice::from_raw_parts(self.slots.ptr.add(off), n));
            }
            at += n as u64;
        }
    }

    /// Advance the drain watermark to `to`, releasing ring space to
    /// appenders blocked in `has_space`.
    pub fn mark_drained(&self, to: u64) {
        debug_assert!(to >= self.drained());
        // ordering: Release — the copy-out above happens-before any appender
        // that sees the new watermark and reuses the space (Acquire in
        // `has_space`).
        self.drained.store(to, Ordering::Release);
    }

    /// Account for `len` bytes at `start` that bypassed the ring (standby
    /// ingest writes through to the image directly). Keeps the `filled`
    /// bookkeeping consistent so later ring appends still publish cleanly.
    /// Caller must hold the reservation and immediately `mark_drained`.
    pub fn skip(&self, start: u64, len: u64) {
        self.publish(start, len);
    }

    fn seg_index(&self, lsn: u64) -> usize {
        (((lsn - self.base) & (self.cap - 1)) / self.seg) as usize
    }

    /// Cumulative bytes segment `s` must hold once everything below `upto`
    /// is published; see the counter-design section of the module docs.
    fn expected(&self, s: usize, upto: u64) -> u64 {
        let off = upto - self.base;
        let laps = off / self.cap;
        let rem = off % self.cap;
        laps * self.seg + rem.saturating_sub(s as u64 * self.seg).min(self.seg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(b: &LogBuffer) -> Vec<u8> {
        let mut out = Vec::new();
        let from = b.drained();
        let to = b.published_to(from);
        b.copy_out(from, to, &mut out);
        b.mark_drained(to);
        out
    }

    #[test]
    fn expected_math_over_laps() {
        let b = LogBuffer::new(100, 8, 4); // cap 32
        assert_eq!(b.expected(0, 100), 0);
        assert_eq!(b.expected(0, 104), 4);
        assert_eq!(b.expected(0, 108), 8);
        assert_eq!(b.expected(1, 108), 0);
        assert_eq!(b.expected(1, 120), 8);
        assert_eq!(b.expected(3, 132), 8); // one full lap
        assert_eq!(b.expected(0, 136), 12); // lap + 4 into seg 0
        assert_eq!(b.expected(2, 136), 8);
    }

    #[test]
    fn roundtrip_across_wrap() {
        let b = LogBuffer::new(16, 8, 2); // cap 16
        let mut lsn = 16u64;
        let mut all_in = Vec::new();
        let mut all_out = Vec::new();
        for i in 0..10u8 {
            let chunk = vec![i; 5];
            let start = b.reserve(5);
            assert_eq!(start, lsn);
            while !b.has_space(start + 5) {
                all_out.extend_from_slice(&drain_all(&b));
            }
            b.copy_in(start, &chunk);
            b.publish(start, 5);
            all_in.extend_from_slice(&chunk);
            lsn += 5;
        }
        all_out.extend_from_slice(&drain_all(&b));
        assert_eq!(all_out, all_in);
        assert_eq!(b.drained(), lsn);
    }

    #[test]
    fn multi_window_frame_publishes_torn() {
        let b = LogBuffer::new(0, 8, 4);
        let start = b.reserve(20); // spans segments 0,1,2
        b.copy_in(start, &[7u8; 20]);
        // Publish only the first window's worth: prefix must stop there.
        b.publish(start, 8);
        assert_eq!(b.published(), 8);
        b.publish(start + 8, 12);
        assert_eq!(b.published(), 20);
    }

    #[test]
    fn hole_blocks_prefix() {
        let b = LogBuffer::new(0, 8, 4);
        let a = b.reserve(4);
        let c = b.reserve(4);
        b.copy_in(c, &[2u8; 4]);
        b.publish(c, 4); // later range published, earlier is a hole
        assert_eq!(b.published(), 0);
        b.copy_in(a, &[1u8; 4]);
        b.publish(a, 4);
        assert_eq!(b.published(), 8);
        assert_eq!(drain_all(&b), vec![1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn concurrent_publish_stress() {
        let b = std::sync::Arc::new(LogBuffer::new(0, 1 << 10, 8));
        let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let drainer = {
            let b = b.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut out = Vec::new();
                loop {
                    let from = b.drained();
                    let to = b.published_to(from);
                    if to > from {
                        b.copy_out(from, to, &mut out);
                        b.mark_drained(to);
                    } else if done.load(std::sync::atomic::Ordering::Acquire)
                        && b.drained() == b.reserved()
                    {
                        return out;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let b = &b;
                s.spawn(move || {
                    for i in 0..200u32 {
                        let len = 1 + ((t as u64 * 31 + i as u64 * 7) % 96);
                        let start = b.reserve(len);
                        while !b.has_space(start + len) {
                            std::thread::yield_now();
                        }
                        let chunk = vec![t; len as usize];
                        b.copy_in(start, &chunk);
                        b.publish(start, len);
                    }
                });
            }
        });
        done.store(true, std::sync::atomic::Ordering::Release);
        let out = drainer.join().unwrap();
        assert_eq!(out.len() as u64, b.reserved());
        // Every thread's bytes all arrived (ranges are contiguous per
        // reservation, so counting per-thread bytes suffices).
        let mut counts = [0u64; 4];
        for byte in &out {
            counts[*byte as usize] += 1;
        }
        for (t, n) in counts.iter().enumerate() {
            let expect: u64 = (0..200u32)
                .map(|i| 1 + ((t as u64 * 31 + i as u64 * 7) % 96))
                .sum();
            assert_eq!(*n, expect, "thread {t} byte count");
        }
    }

    #[test]
    fn next_lap_waits_for_drain_to_leave_segment() {
        // Regression: the cross-lap wedge. With plain `end <= drained + cap`
        // backpressure, a reservation reaching into segment 0's second lap
        // while the drain watermark sat mid-way through segment 0's first
        // lap would publish into `filled[0]`, overshooting the first-lap
        // expectation; `published_to` then returns the watermark forever,
        // the ring never frees space, and every appender livelocks in
        // `has_space`. (First hit by a read-mostly workload whose commits
        // no longer force the log, letting the ring lag a full lap.)
        let b = LogBuffer::new(16, 8, 2); // windows [16,24) [24,32), cap 16
        let s0 = b.reserve(16);
        b.copy_in(s0, &[1u8; 16]);
        b.publish(s0, 16);
        assert_eq!(b.published_to(16), 32);
        // Drain only half of segment 0's window: watermark mid-window.
        let mut out = Vec::new();
        b.copy_out(16, 20, &mut out);
        b.mark_drained(20);
        // [32,36) is segment 0, lap 2: must be refused while the watermark
        // is inside segment 0 (old bound admitted it: 36 <= 20 + 16).
        let s1 = b.reserve(4);
        assert_eq!(s1, 32);
        assert!(!b.has_space(s1 + 4));
        // Once the watermark leaves segment 0, the reservation fits and the
        // published prefix advances through the second lap.
        b.copy_out(20, 24, &mut out);
        b.mark_drained(24);
        assert!(b.has_space(s1 + 4));
        b.copy_in(s1, &[2u8; 4]);
        b.publish(s1, 4);
        assert_eq!(b.published_to(24), 36);
        assert_eq!(out, vec![1u8; 8]);
    }

    #[test]
    fn skip_keeps_accounting_consistent() {
        let b = LogBuffer::new(0, 8, 2);
        let s0 = b.reserve(10);
        b.skip(s0, 10);
        b.mark_drained(10);
        assert_eq!(b.published(), 10);
        // A normal append after the skip still publishes and drains.
        let s1 = b.reserve(4);
        b.copy_in(s1, b"abcd");
        b.publish(s1, 4);
        assert_eq!(drain_all(&b), b"abcd");
    }
}
