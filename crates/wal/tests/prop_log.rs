//! Property tests for the log manager: arbitrary record sequences survive a
//! round trip, and arbitrary *byte-level* truncation (a torn tail) yields
//! exactly the longest valid record prefix — never garbage, never a panic.

use ariesim_common::stats::new_stats;
use ariesim_common::tmp::TempDir;
use ariesim_common::{Lsn, PageId, TxnId};
use ariesim_wal::{LogManager, LogOptions, LogRecord, RmId};
use proptest::prelude::*;

fn open(dir: &TempDir) -> LogManager {
    LogManager::open(&dir.file("wal"), LogOptions::default(), new_stats()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_arbitrary_records(
        bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300),
            1..40,
        )
    ) {
        let dir = TempDir::new("prop-wal");
        let m = open(&dir);
        let mut prev = Lsn::NULL;
        let mut lsns = Vec::new();
        for (i, b) in bodies.iter().enumerate() {
            prev = m.append(&LogRecord::update(
                TxnId(1 + (i % 3) as u64),
                prev,
                RmId::Heap,
                PageId(1 + (i % 5) as u32),
                b.clone(),
            ));
            lsns.push(prev);
        }
        m.flush_all().unwrap();
        drop(m);
        let m = open(&dir);
        let recs: Vec<LogRecord> = m.scan(Lsn::NULL).map(|r| r.unwrap()).collect();
        prop_assert_eq!(recs.len(), bodies.len());
        for ((rec, body), lsn) in recs.iter().zip(&bodies).zip(&lsns) {
            prop_assert_eq!(&rec.body, body);
            prop_assert_eq!(rec.lsn, *lsn);
        }
    }

    #[test]
    fn byte_truncation_yields_longest_valid_prefix(
        bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..120),
            2..20,
        ),
        cut_back in 1usize..200,
    ) {
        let dir = TempDir::new("prop-wal");
        let path = dir.file("wal");
        let m = open(&dir);
        let mut prev = Lsn::NULL;
        let mut lsns = Vec::new();
        for b in &bodies {
            prev = m.append(&LogRecord::update(TxnId(1), prev, RmId::Heap, PageId(1), b.clone()));
            lsns.push(prev);
        }
        let end = m.next_lsn().0;
        m.flush_all().unwrap();
        drop(m);
        // Tear off `cut_back` bytes from the end (clamped to keep the magic).
        let keep = end.saturating_sub(cut_back as u64).max(16);
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(keep).unwrap();
        drop(f);
        let m = open(&dir);
        let recs: Vec<LogRecord> = m.scan(Lsn::NULL).map(|r| r.unwrap()).collect();
        // Exactly the records whose full frame fits below `keep` survive.
        // Frame = 8 bytes framing + 30-byte envelope + user body.
        const ENVELOPE: u64 = 30;
        let expected = lsns
            .iter()
            .zip(&bodies)
            .take_while(|(lsn, b)| lsn.0 + 8 + ENVELOPE + b.len() as u64 <= keep)
            .count();
        prop_assert_eq!(recs.len(), expected, "keep={} end={}", keep, end);
        for (rec, body) in recs.iter().zip(&bodies) {
            prop_assert_eq!(&rec.body, body);
        }
        // And the log is appendable after the tear.
        let l = m.append(&LogRecord::update(TxnId(9), Lsn::NULL, RmId::Heap, PageId(2), vec![1]));
        prop_assert_eq!(m.read(l).unwrap().body, vec![1]);
    }
}
