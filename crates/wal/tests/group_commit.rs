//! Group-commit stress: N committer threads interleaving with the flush
//! side (dedicated flusher thread and leader-based), plus crash semantics
//! with the flusher running.

use ariesim_common::stats::new_stats;
use ariesim_common::tmp::TempDir;
use ariesim_common::{Lsn, PageId, TxnId};
use ariesim_wal::record::RmId;
use ariesim_wal::{LogManager, LogOptions, LogRecord};

fn upd(txn: u64, body: &[u8]) -> LogRecord {
    LogRecord::update(TxnId(txn), Lsn::NULL, RmId::Heap, PageId(1), body.to_vec())
}

/// 8 committers × 200 commits each: every flush_to must return only once
/// the record is durable, and the final log must contain every record.
fn hammer(opts: LogOptions) {
    const THREADS: u64 = 8;
    const COMMITS: u64 = 200;
    let dir = TempDir::new("wal-gc");
    let path = dir.file("wal");
    let m = LogManager::open(&path, opts, new_stats()).unwrap();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let m = &m;
            s.spawn(move || {
                for i in 0..COMMITS {
                    let lsn = m.append(&upd(t, &[t as u8, i as u8, (i >> 8) as u8]));
                    m.flush_to(lsn).unwrap();
                    assert!(
                        m.flushed_lsn() > lsn,
                        "flush_to returned before {lsn:?} was durable"
                    );
                }
            });
        }
    });
    drop(m);
    // Reopen: every record was durable at flush_to return, so all survive.
    let re = LogManager::open(&path, LogOptions::default(), new_stats()).unwrap();
    let mut per_thread = [0u64; THREADS as usize];
    for r in re.scan(Lsn::NULL) {
        let r = r.unwrap();
        per_thread[r.body[0] as usize] += 1;
    }
    assert_eq!(per_thread, [COMMITS; THREADS as usize]);
}

#[test]
fn committers_race_dedicated_flusher() {
    hammer(LogOptions {
        flusher: true,
        ..LogOptions::default()
    });
}

#[test]
fn committers_race_leader_election() {
    hammer(LogOptions::default());
}

#[test]
fn tiny_ring_backpressure_under_contention() {
    // 4 × 256-byte segments: the ring wraps constantly and appenders hit
    // the help-drain backpressure path while the flusher drains.
    hammer(LogOptions {
        flusher: true,
        ring_segments: 4,
        ring_segment_bytes: 256,
        ..LogOptions::default()
    });
}

#[test]
fn drop_with_flusher_still_loses_unflushed_tail() {
    let dir = TempDir::new("wal-gc");
    let path = dir.file("wal");
    let m = LogManager::open(
        &path,
        LogOptions {
            flusher: true,
            ..LogOptions::default()
        },
        new_stats(),
    )
    .unwrap();
    let l1 = m.append(&upd(1, b"durable"));
    m.flush_to(l1).unwrap();
    let l2 = m.append(&upd(1, b"lost"));
    assert!(m.read(l2).is_ok());
    drop(m); // joins the flusher without flushing: simulated crash
    let re = LogManager::open(&path, LogOptions::default(), new_stats()).unwrap();
    assert_eq!(re.last_lsn(), l1);
    assert!(re.read(l2).is_err());
}

#[test]
fn group_commit_batches_are_counted() {
    let dir = TempDir::new("wal-gc");
    let obs = ariesim_obs::Obs::enabled(64);
    let m = LogManager::open_with_obs(
        &dir.file("wal"),
        LogOptions::default(),
        new_stats(),
        obs.clone(),
    )
    .unwrap();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let m = &m;
            s.spawn(move || {
                for i in 0..50u64 {
                    let lsn = m.append(&upd(t, &[t as u8, i as u8]));
                    m.flush_to(lsn).unwrap();
                }
            });
        }
    });
    let batches = obs
        .wal
        .group_batches
        .load(std::sync::atomic::Ordering::Relaxed);
    let riders = obs
        .wal
        .group_riders
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(batches > 0, "no group batches recorded");
    // Histogram entries mirror the batch count.
    assert_eq!(obs.hist.wal_group_batch.snapshot().count, batches);
    // A commit is satisfied by leading a batch, riding one, or hitting the
    // already-durable fast path (which counts nowhere) — so the counters
    // can never exceed the commit count.
    assert!(batches <= 200, "more batches than commits: {batches}");
    assert!(riders <= 200, "more riders than commits: {riders}");
}
