//! # ariesim — ARIES/IM in Rust
//!
//! A full reproduction of *ARIES/IM: An Efficient and High Concurrency Index
//! Management Method Using Write-Ahead Logging* (C. Mohan, F. Levine,
//! SIGMOD 1992), together with every substrate the paper assumes: the ARIES
//! write-ahead log and restart recovery, a steal/no-force buffer manager
//! with page latches, a lock manager with instant/commit durations and
//! conditional requests, a heap record manager (the data-only-locking
//! substrate), and the ARIES/KVL baseline.
//!
//! ## Quick start
//!
//! ```
//! use ariesim::db::{Db, DbOptions, FetchCond, Row};
//! use ariesim::common::tmp::TempDir;
//!
//! let dir = TempDir::new("quickstart");
//! let db = Db::open(dir.path(), DbOptions::default()).unwrap();
//! db.create_table("people", 2).unwrap();
//! db.create_index("people_pk", "people", 0, true).unwrap();
//!
//! let txn = db.begin();
//! db.insert_row(&txn, "people", &Row::from_strs(&["alice", "researcher"])).unwrap();
//! db.commit(&txn).unwrap();
//!
//! let txn = db.begin();
//! let (_rid, row) = db.fetch_via(&txn, "people_pk", b"alice", FetchCond::Eq)
//!     .unwrap()
//!     .expect("alice is committed");
//! assert_eq!(row.field(1).unwrap(), b"researcher");
//! db.commit(&txn).unwrap();
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`common`] | `ariesim-common` | ids, pages, keys, stats |
//! | [`wal`] | `ariesim-wal` | log records, CLRs, log manager |
//! | [`storage`] | `ariesim-storage` | disk, buffer pool, latches, space map |
//! | [`lock`] | `ariesim-lock` | lock manager |
//! | [`txn`] | `ariesim-txn` | transactions, NTAs, checkpoints |
//! | [`recovery`] | `ariesim-recovery` | restart + media recovery |
//! | [`record`] | `ariesim-record` | heap record manager |
//! | [`btree`] | `ariesim-btree` | **ARIES/IM itself** |
//! | [`kvl`] | `ariesim-kvl` | ARIES/KVL baseline |
//! | [`db`] | `ariesim-db` | assembled engine facade |
//! | [`obs`] | `ariesim-obs` | latency histograms, event tracing, invariant monitors |

pub use ariesim_btree as btree;
pub use ariesim_common as common;
pub use ariesim_db as db;
pub use ariesim_kvl as kvl;
pub use ariesim_lock as lock;
pub use ariesim_obs as obs;
pub use ariesim_record as record;
pub use ariesim_recovery as recovery;
pub use ariesim_storage as storage;
pub use ariesim_txn as txn;
pub use ariesim_wal as wal;

/// The most commonly used items in one import.
pub mod prelude {
    pub use ariesim_btree::fetch::{FetchCond, FetchResult};
    pub use ariesim_btree::{BTree, LockProtocol};
    pub use ariesim_common::tmp::TempDir;
    pub use ariesim_common::{IndexId, IndexKey, Lsn, PageId, Rid, TableId, TxnId};
    pub use ariesim_db::{Db, DbOptions, Row};
}
